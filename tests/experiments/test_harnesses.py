"""Smoke + shape tests for every experiment harness (small budgets).

The full-budget runs live in benchmarks/; here we verify the harnesses
execute end-to-end, produce well-formed rows, and that the paper's
*qualitative* shapes already appear at small trial counts.
"""

import numpy as np
import pytest

from repro.experiments.ablation import (
    format_gamma_sweep,
    run_fairbipart_gamma_sweep,
    run_fairtree_gamma_sweep,
    run_luby_variant_comparison,
)
from repro.experiments.bounds import format_bounds, run_all_bounds
from repro.experiments.cone import format_cone, run_cone_experiment
from repro.experiments.datasets import binary_tree, campus_tree
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.rounds import format_rounds, run_rounds_experiment
from repro.experiments.star import format_star, run_star_experiment
from repro.experiments.table1 import format_table1, run_table1


class TestTable1:
    def test_rows_shape(self):
        trees = [campus_tree(seed=11)]
        rows = run_table1(trials=150, seed=0, trees=trees)
        assert len(rows) == 2  # luby + fairtree
        assert {r.algorithm for r in rows} == {"luby_fast", "fair_tree_fast"}

    def test_luby_less_fair_than_fairtree(self):
        trees = [campus_tree(seed=11)]
        rows = run_table1(trials=250, seed=0, trees=trees)
        by_alg = {r.algorithm: r for r in rows}
        assert (
            by_alg["luby_fast"].inequality
            > by_alg["fair_tree_fast"].inequality
        )

    def test_format(self):
        rows = run_table1(trials=60, seed=0, trees=[campus_tree(seed=11)])
        text = format_table1(rows)
        assert "Ineq." in text and "Dartmouth" in text


class TestFigure4:
    def test_series_shape(self):
        series = run_figure4(trials=120, seed=0, trees=[campus_tree(seed=11)])
        assert len(series) == 2
        s = series[0]
        assert len(s.frequencies) == s.cdf.x.shape[0]

    def test_fairtree_more_compact(self):
        series = run_figure4(trials=300, seed=0, trees=[campus_tree(seed=11)])
        by_alg = {s.algorithm: s for s in series}
        assert (
            by_alg["fair_tree_fast"].stats["range"]
            < by_alg["luby_fast"].stats["range"]
        )

    def test_format(self):
        series = run_figure4(trials=60, seed=0, trees=[campus_tree(seed=11)])
        assert "Panel" in format_figure4(series)


class TestStar:
    def test_luby_matches_theory(self):
        rows = run_star_experiment(sizes=(16,), trials=1200, seed=0)
        luby = next(r for r in rows if "luby" in r.algorithm)
        assert luby.center_probability == pytest.approx(1 / 16, abs=0.03)
        assert luby.inequality == pytest.approx(15.0, rel=0.4)

    def test_fair_algorithms_fair_on_star(self):
        rows = run_star_experiment(sizes=(16,), trials=800, seed=0)
        for r in rows:
            if "luby" not in r.algorithm:
                assert r.inequality < 4.5

    def test_format(self):
        rows = run_star_experiment(sizes=(8,), trials=100, seed=0)
        assert "P(center)" in format_star(rows)


class TestCone:
    def test_inequality_grows_with_k(self):
        rows = run_cone_experiment(ks=(2, 6), trials=1500, seed=0)
        from collections import defaultdict

        by_alg = defaultdict(dict)
        for r in rows:
            by_alg[r.algorithm][r.k] = r.inequality
        for alg, vals in by_alg.items():
            assert vals[6] > vals[2], alg

    def test_every_algorithm_unfair_at_k8(self):
        rows = run_cone_experiment(ks=(8,), trials=2500, seed=0)
        for r in rows:
            # Theorem 19: F >= k; allow sampling slack
            assert r.inequality >= 0.6 * r.theory_lower_bound, r.algorithm

    def test_format(self):
        rows = run_cone_experiment(ks=(2,), trials=200, seed=0)
        assert "P(apex)" in format_cone(rows)


class TestBounds:
    def test_all_theorems_satisfied(self):
        checks = run_all_bounds(trials=800, seed=0)
        assert len(checks) == 4
        for c in checks:
            assert c.satisfied, f"{c.theorem} violated: {c}"

    def test_format(self):
        checks = run_all_bounds(trials=200, seed=0)
        assert "Theorem 3" in format_bounds(checks)


class TestRounds:
    def test_rows_and_scales(self):
        rows = run_rounds_experiment(sizes=(16, 32), repeats=1, seed=0)
        assert {r.algorithm for r in rows} == {
            "luby",
            "fair_rooted",
            "fair_tree",
            "fair_bipart",
        }
        for r in rows:
            assert r.rounds_mean > 0

    def test_fair_rooted_rounds_nearly_flat(self):
        rows = run_rounds_experiment(sizes=(16, 128), repeats=1, seed=0)
        fr = [r for r in rows if r.algorithm == "fair_rooted"]
        assert fr[1].rounds_mean <= fr[0].rounds_mean + 6

    def test_format(self):
        rows = run_rounds_experiment(sizes=(16,), repeats=1, seed=0)
        assert "rounds/scale" in format_rounds(rows)


class TestAblation:
    def test_fairtree_gamma_sweep_shape(self):
        rows = run_fairtree_gamma_sweep(
            gamma_cs=(0.5, 3.0), n=60, trials=300, seed=0
        )
        assert len(rows) == 2
        # small γ → more fallbacks than the paper-default γ
        assert rows[0].fallback_fraction >= rows[1].fallback_fraction

    def test_fairbipart_gamma_sweep_shape(self):
        rows = run_fairbipart_gamma_sweep(gamma_cs=(1.0, 3.0), n=48, trials=300)
        assert len(rows) == 2
        assert rows[1].gamma > rows[0].gamma

    def test_luby_variant_comparison(self):
        out = run_luby_variant_comparison(trials=500, seed=0)
        assert set(out) == {"luby_fast", "luby_degree_fast"}
        assert all(v > 1.5 for v in out.values())  # both unfair here

    def test_format(self):
        rows = run_fairtree_gamma_sweep(gamma_cs=(1.0,), n=40, trials=100)
        assert "fallback" in format_gamma_sweep(rows)
