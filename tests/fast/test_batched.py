"""Tests for the batched (disjoint-union) trial engines."""

import numpy as np
import pytest

from repro.analysis import run_trials
from repro.fast.batched import (
    batched_color_mis_trials,
    batched_fair_bipart_trials,
    batched_fair_rooted_trials,
    batched_fair_tree_trials,
    batched_luby_trials,
    disjoint_power,
    disjoint_power_cache_clear,
    disjoint_power_cache_info,
    vector_runner_for,
)
from repro.fast.blocks import FastColorMIS, FastFairBipart
from repro.fast.fair_rooted import FastFairRooted
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.graphs.generators import (
    path_graph,
    random_planar_like,
    random_tree,
    star_graph,
)


class TestDisjointPower:
    def test_structure(self):
        g = path_graph(4)
        u = disjoint_power(g, 3)
        assert u.n == 12 and u.m == 9
        count, labels = u.connected_components()
        assert count == 3

    def test_copy_offsets(self):
        g = star_graph(4)
        u = disjoint_power(g, 2)
        # copy 1's center is vertex 4
        assert u.degrees[4] == 3
        assert u.has_edge(4, 5) and not u.has_edge(3, 4)

    def test_single_copy_is_same_object(self):
        g = path_graph(3)
        assert disjoint_power(g, 1) is g

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            disjoint_power(path_graph(3), 0)

    def test_edgeless(self):
        from repro.graphs.generators import empty_graph

        u = disjoint_power(empty_graph(3), 4)
        assert u.n == 12 and u.m == 0


class TestBatchedLuby:
    def test_counts_bounded(self):
        g = random_tree(20, seed=1).graph
        est = batched_luby_trials(g, trials=100, seed=0, batch=32)
        assert est.trials == 100
        assert est.counts.max() <= 100

    def test_partial_final_batch(self):
        g = path_graph(6)
        est = batched_luby_trials(g, trials=70, seed=0, batch=32)
        assert est.trials == 70

    def test_agrees_with_serial_distribution(self):
        """Batched and serial are the same distribution (different stream
        layout), so estimates must agree within sampling error."""
        g = random_tree(25, seed=2).graph
        batched = batched_luby_trials(g, trials=3000, seed=1, batch=64)
        serial = run_trials(FastLuby(), g, 3000, seed=2)
        se = np.sqrt(2 * 0.25 / 3000)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 5 * se + 0.02
        )

    def test_star_center_probability(self):
        n = 16
        est = batched_luby_trials(star_graph(n), trials=4000, seed=3)
        assert est.probabilities[0] == pytest.approx(1 / n, abs=0.02)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            batched_luby_trials(path_graph(3), trials=0)


class TestBatchedFairTree:
    def test_counts_bounded(self):
        g = random_tree(20, seed=1).graph
        est = batched_fair_tree_trials(g, trials=80, seed=0, batch=32)
        assert est.trials == 80

    def test_gamma_pinned_to_base_graph(self):
        """The batched run must use γ(n), not γ(C·n) — check by agreement
        with the explicit-γ serial runner."""
        from repro.algorithms.fair_tree import default_gamma

        g = path_graph(12)
        gamma = default_gamma(12)
        batched = batched_fair_tree_trials(
            g, trials=2500, seed=1, batch=50, gamma=gamma
        )
        serial = run_trials(FastFairTree(gamma=gamma), g, 2500, seed=2)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 0.06
        )

    def test_theorem8_holds_batched(self):
        g = random_tree(40, seed=5).graph
        est = batched_fair_tree_trials(g, trials=2000, seed=0)
        slack = 3 * np.sqrt(0.25 * 0.75 / 2000)
        assert est.min_probability >= 0.25 - slack

    def test_validity_of_union_runs(self):
        """Membership restricted to each copy must be a valid MIS."""
        from repro.analysis import is_maximal_independent_set
        from repro.fast.fair_tree import fair_tree_run
        from repro.algorithms.fair_tree import default_gamma

        g = random_tree(15, seed=6).graph
        union = disjoint_power(g, 8)
        rng = np.random.default_rng(0)
        member, _ = fair_tree_run(union, rng, gamma=default_gamma(15))
        for c in range(8):
            chunk = member[c * 15 : (c + 1) * 15]
            assert is_maximal_independent_set(g, chunk)


class TestUnionMemo:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        disjoint_power_cache_clear()
        yield
        disjoint_power_cache_clear()

    def test_repeat_returns_cached_object(self):
        g = path_graph(5)
        first = disjoint_power(g, 4)
        assert disjoint_power(g, 4) is first
        info = disjoint_power_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_distinct_keys_are_distinct_entries(self):
        g = path_graph(5)
        assert disjoint_power(g, 3) is not disjoint_power(g, 4)
        assert disjoint_power_cache_info()["misses"] == 2

    def test_distinct_graphs_do_not_collide(self):
        a = disjoint_power(path_graph(5), 3)
        b = disjoint_power(star_graph(5), 3)
        assert not np.array_equal(a.edges, b.edges)

    def test_lru_eviction_respects_cap(self):
        g = path_graph(5)
        cap = disjoint_power_cache_info()["cap"]
        first = disjoint_power(g, 2)
        for copies in range(3, cap + 3):
            disjoint_power(g, copies)
        assert disjoint_power_cache_info()["size"] == cap
        # copies=2 was the least recently used entry, so it was evicted
        assert disjoint_power(g, 2) is not first

    def test_clear_resets_stats_and_entries(self):
        disjoint_power(path_graph(4), 3)
        disjoint_power_cache_clear()
        info = disjoint_power_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0 and info["size"] == 0

    def test_single_copy_bypasses_cache(self):
        g = path_graph(4)
        assert disjoint_power(g, 1) is g
        assert disjoint_power_cache_info()["size"] == 0


class TestBatchedFairRooted:
    def test_counts_bounded(self):
        g = random_tree(20, seed=1).graph
        est = batched_fair_rooted_trials(g, trials=90, seed=0, batch=32)
        assert est.trials == 90
        assert est.counts.max() <= 90 and est.counts.min() >= 0

    def test_agrees_with_serial_distribution(self):
        g = random_tree(25, seed=2).graph
        batched = batched_fair_rooted_trials(g, trials=3000, seed=1, batch=64)
        serial = run_trials(FastFairRooted(), g, 3000, seed=2)
        se = np.sqrt(2 * 0.25 / 3000)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 5 * se + 0.02
        )

    def test_validity_of_union_runs(self):
        from repro.analysis import is_maximal_independent_set
        from repro.fast.fair_rooted import fair_rooted_run
        from repro.graphs.graph import RootedTree

        g = random_tree(15, seed=6).graph
        parent = RootedTree.from_graph(g).parent
        union = disjoint_power(g, 8)
        offsets = (np.arange(8, dtype=np.int64) * 15)[:, None]
        union_parent = np.where(
            np.broadcast_to(parent, (8, 15)) >= 0,
            np.broadcast_to(parent, (8, 15)) + offsets,
            np.int64(-1),
        ).reshape(-1)
        member, _ = fair_rooted_run(
            union, union_parent, np.random.default_rng(0), base_n=15
        )
        for c in range(8):
            assert is_maximal_independent_set(g, member[c * 15 : (c + 1) * 15])

    def test_base_n_must_divide_union(self):
        from repro.fast.fair_rooted import fair_rooted_run
        from repro.graphs.graph import RootedTree

        g = random_tree(10, seed=1).graph
        parent = RootedTree.from_graph(g).parent
        with pytest.raises(ValueError, match="base_n"):
            fair_rooted_run(g, parent, np.random.default_rng(0), base_n=3)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            batched_fair_rooted_trials(path_graph(3), trials=0)


class TestBatchedFairBipart:
    def test_counts_bounded(self):
        g = random_planar_like(24, seed=1)
        est = batched_fair_bipart_trials(g, trials=90, seed=0, batch=32)
        assert est.trials == 90
        assert est.counts.max() <= 90 and est.counts.min() >= 0

    def test_agrees_with_serial_distribution(self):
        g = random_planar_like(24, seed=2)
        batched = batched_fair_bipart_trials(g, trials=3000, seed=1, batch=64)
        serial = run_trials(FastFairBipart(), g, 3000, seed=2)
        se = np.sqrt(2 * 0.25 / 3000)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 5 * se + 0.02
        )

    def test_validity_of_union_runs(self):
        from repro.analysis import is_maximal_independent_set
        from repro.algorithms.fair_bipart import default_block_gamma
        from repro.fast.blocks import fair_bipart_run

        g = random_planar_like(15, seed=6)
        union = disjoint_power(g, 8)
        member, _ = fair_bipart_run(
            union, np.random.default_rng(0), gamma=default_block_gamma(15, 2.0)
        )
        for c in range(8):
            assert is_maximal_independent_set(g, member[c * 15 : (c + 1) * 15])

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            batched_fair_bipart_trials(path_graph(3), trials=0)


class TestBatchedColorMIS:
    def test_counts_bounded(self):
        g = random_planar_like(24, seed=1)
        est = batched_color_mis_trials(g, trials=90, seed=0, batch=32)
        assert est.trials == 90
        assert est.counts.max() <= 90 and est.counts.min() >= 0

    def test_agrees_with_serial_distribution(self):
        g = random_planar_like(24, seed=2)
        batched = batched_color_mis_trials(g, trials=3000, seed=1, batch=64)
        serial = run_trials(FastColorMIS(), g, 3000, seed=2)
        se = np.sqrt(2 * 0.25 / 3000)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 5 * se + 0.02
        )

    def test_arboricity_agrees_with_serial_distribution(self):
        g = random_planar_like(24, seed=3)
        batched = batched_color_mis_trials(
            g, trials=3000, seed=1, batch=64, coloring="arboricity"
        )
        serial = run_trials(FastColorMIS(coloring="arboricity"), g, 3000, seed=2)
        se = np.sqrt(2 * 0.25 / 3000)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 5 * se + 0.02
        )

    def test_validity_of_union_runs(self):
        from repro.analysis import is_maximal_independent_set
        from repro.fast.blocks import color_mis_run

        g = random_planar_like(15, seed=6)
        params = FastColorMIS().resolved_params(g)
        union = disjoint_power(g, 8)
        member, _ = color_mis_run(
            union,
            np.random.default_rng(0),
            gamma=params["gamma"],
            k=params["k"],
            iterations=params["iterations"],
            coloring="greedy",
            cap=params["cap"],
        )
        for c in range(8):
            assert is_maximal_independent_set(g, member[c * 15 : (c + 1) * 15])

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            batched_color_mis_trials(path_graph(3), trials=0)


class TestParameterPinning:
    """Size-derived parameters must come from the base graph, not the union."""

    def test_cole_vishkin_pinned_to_base(self, monkeypatch):
        import repro.fast.fair_rooted as fr
        from repro.algorithms.cole_vishkin import cv_reduction_iterations

        g = random_tree(20, seed=4).graph
        seen = []
        real = fr.cole_vishkin_colors

        def spy(n, parent, participating, init_colors=None, iterations=None):
            seen.append((n, init_colors, iterations))
            return real(n, parent, participating, init_colors, iterations)

        monkeypatch.setattr(fr, "cole_vishkin_colors", spy)
        batched_fair_rooted_trials(g, trials=8, seed=0, batch=8)
        assert len(seen) == 1
        union_n, init_colors, iterations = seen[0]
        assert union_n == 160
        assert iterations == cv_reduction_iterations(19)
        assert np.array_equal(init_colors, np.tile(np.arange(20), 8))

    def test_fair_bipart_gamma_pinned_to_base(self, monkeypatch):
        import repro.fast.blocks as blocks
        from repro.algorithms.fair_bipart import default_block_gamma

        g = random_planar_like(24, seed=2)
        seen = []
        real = blocks.construct_block_fast

        def spy(graph, rng, gamma, values, mode, value_base, p=0.5):
            seen.append((graph.n, gamma, mode, value_base))
            return real(graph, rng, gamma, values, mode, value_base, p)

        monkeypatch.setattr(blocks, "construct_block_fast", spy)
        batched_fair_bipart_trials(g, trials=6, seed=0, batch=6)
        assert seen == [(144, default_block_gamma(24, 2.0), "bit", 2)]

    def test_color_mis_params_pinned_to_base(self, monkeypatch):
        import repro.fast.blocks as blocks
        from repro.fast.blocks import color_mis_iterations

        g = random_planar_like(24, seed=3)
        expected = FastColorMIS().resolved_params(g)
        seen = {}
        real_color = blocks.greedy_coloring_fast
        real_block = blocks.construct_block_fast

        def color_spy(graph, rng, iterations):
            seen["iterations"] = iterations
            return real_color(graph, rng, iterations)

        def block_spy(graph, rng, gamma, values, mode, value_base, p=0.5):
            seen["gamma"] = gamma
            seen["k"] = value_base
            return real_block(graph, rng, gamma, values, mode, value_base, p)

        monkeypatch.setattr(blocks, "greedy_coloring_fast", color_spy)
        monkeypatch.setattr(blocks, "construct_block_fast", block_spy)
        batched_color_mis_trials(g, trials=5, seed=0, batch=5)
        assert seen["iterations"] == expected["iterations"]
        assert seen["iterations"] == color_mis_iterations(24)
        assert seen["iterations"] != color_mis_iterations(24 * 5)
        assert seen["gamma"] == expected["gamma"]
        assert seen["k"] == expected["k"]

    def test_arboricity_cap_pinned_to_base(self, monkeypatch):
        import repro.fast.blocks as blocks

        g = random_planar_like(24, seed=3)
        expected = FastColorMIS(coloring="arboricity").resolved_params(g)
        seen = {}
        real = blocks.arboricity_coloring_fast

        def spy(graph, rng, cap, iterations):
            seen["cap"] = cap
            seen["iterations"] = iterations
            return real(graph, rng, cap, iterations)

        monkeypatch.setattr(blocks, "arboricity_coloring_fast", spy)
        batched_color_mis_trials(g, trials=5, seed=0, batch=5, coloring="arboricity")
        assert seen["cap"] == expected["cap"]
        assert seen["iterations"] == expected["iterations"]


class TestVectorRunnerRegistry:
    def test_all_five_paper_algorithms_covered(self):
        algorithms = [
            FastLuby(),
            FastFairTree(),
            FastFairRooted(),
            FastFairBipart(),
            FastColorMIS(),
            FastColorMIS(coloring="arboricity"),
        ]
        for algorithm in algorithms:
            assert vector_runner_for(algorithm) is not None, algorithm.name

    def test_unbatchable_variant_returns_none(self):
        assert vector_runner_for(FastLuby(variant="degree")) is None

    def test_runner_output_matches_direct_batched_call(self):
        g = random_tree(20, seed=7).graph
        runner = vector_runner_for(FastFairRooted())
        counts = runner(FastFairRooted(), g, 40, 9)
        direct = batched_fair_rooted_trials(g, trials=40, seed=9).counts
        assert np.array_equal(counts, direct)
