"""Tests for the batched (disjoint-union) trial engines."""

import numpy as np
import pytest

from repro.analysis import run_trials
from repro.fast.batched import (
    batched_fair_tree_trials,
    batched_luby_trials,
    disjoint_power,
)
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.graphs.generators import path_graph, random_tree, star_graph


class TestDisjointPower:
    def test_structure(self):
        g = path_graph(4)
        u = disjoint_power(g, 3)
        assert u.n == 12 and u.m == 9
        count, labels = u.connected_components()
        assert count == 3

    def test_copy_offsets(self):
        g = star_graph(4)
        u = disjoint_power(g, 2)
        # copy 1's center is vertex 4
        assert u.degrees[4] == 3
        assert u.has_edge(4, 5) and not u.has_edge(3, 4)

    def test_single_copy_is_same_object(self):
        g = path_graph(3)
        assert disjoint_power(g, 1) is g

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            disjoint_power(path_graph(3), 0)

    def test_edgeless(self):
        from repro.graphs.generators import empty_graph

        u = disjoint_power(empty_graph(3), 4)
        assert u.n == 12 and u.m == 0


class TestBatchedLuby:
    def test_counts_bounded(self):
        g = random_tree(20, seed=1).graph
        est = batched_luby_trials(g, trials=100, seed=0, batch=32)
        assert est.trials == 100
        assert est.counts.max() <= 100

    def test_partial_final_batch(self):
        g = path_graph(6)
        est = batched_luby_trials(g, trials=70, seed=0, batch=32)
        assert est.trials == 70

    def test_agrees_with_serial_distribution(self):
        """Batched and serial are the same distribution (different stream
        layout), so estimates must agree within sampling error."""
        g = random_tree(25, seed=2).graph
        batched = batched_luby_trials(g, trials=3000, seed=1, batch=64)
        serial = run_trials(FastLuby(), g, 3000, seed=2)
        se = np.sqrt(2 * 0.25 / 3000)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 5 * se + 0.02
        )

    def test_star_center_probability(self):
        n = 16
        est = batched_luby_trials(star_graph(n), trials=4000, seed=3)
        assert est.probabilities[0] == pytest.approx(1 / n, abs=0.02)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            batched_luby_trials(path_graph(3), trials=0)


class TestBatchedFairTree:
    def test_counts_bounded(self):
        g = random_tree(20, seed=1).graph
        est = batched_fair_tree_trials(g, trials=80, seed=0, batch=32)
        assert est.trials == 80

    def test_gamma_pinned_to_base_graph(self):
        """The batched run must use γ(n), not γ(C·n) — check by agreement
        with the explicit-γ serial runner."""
        from repro.algorithms.fair_tree import default_gamma

        g = path_graph(12)
        gamma = default_gamma(12)
        batched = batched_fair_tree_trials(
            g, trials=2500, seed=1, batch=50, gamma=gamma
        )
        serial = run_trials(FastFairTree(gamma=gamma), g, 2500, seed=2)
        assert np.all(
            np.abs(batched.probabilities - serial.probabilities) < 0.06
        )

    def test_theorem8_holds_batched(self):
        g = random_tree(40, seed=5).graph
        est = batched_fair_tree_trials(g, trials=2000, seed=0)
        slack = 3 * np.sqrt(0.25 * 0.75 / 2000)
        assert est.min_probability >= 0.25 - slack

    def test_validity_of_union_runs(self):
        """Membership restricted to each copy must be a valid MIS."""
        from repro.analysis import is_maximal_independent_set
        from repro.fast.fair_tree import fair_tree_run
        from repro.algorithms.fair_tree import default_gamma

        g = random_tree(15, seed=6).graph
        union = disjoint_power(g, 8)
        rng = np.random.default_rng(0)
        member, _ = fair_tree_run(union, rng, gamma=default_gamma(15))
        for c in range(8):
            chunk = member[c * 15 : (c + 1) * 15]
            assert is_maximal_independent_set(g, chunk)
