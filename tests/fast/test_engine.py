"""Unit tests for the vectorized scatter primitives (vs brute force)."""

import numpy as np
import pytest

from repro.fast.engine import (
    edge_both,
    neighbor_any,
    neighbor_count,
    neighbor_max,
    priority_keys,
)
from repro.graphs.generators import grid_graph, path_graph, star_graph


def brute_any(g, mask):
    return np.array(
        [any(mask[int(w)] for w in g.neighbors(v)) for v in range(g.n)]
    )


def brute_max(g, values, fill=-1):
    out = np.full(g.n, fill, dtype=values.dtype)
    for v in range(g.n):
        nbrs = g.neighbors(v)
        if len(nbrs):
            out[v] = max(values[int(w)] for w in nbrs)
    return out


class TestNeighborAny:
    def test_matches_brute_force(self):
        g = grid_graph(4, 5)
        rng = np.random.default_rng(0)
        for _ in range(5):
            mask = rng.random(g.n) < 0.3
            got = neighbor_any(mask, g.edge_src, g.edge_dst, g.n)
            assert np.array_equal(got, brute_any(g, mask))

    def test_empty_graph(self):
        from repro.graphs.generators import empty_graph

        g = empty_graph(4)
        mask = np.array([True] * 4)
        assert not neighbor_any(mask, g.edge_src, g.edge_dst, g.n).any()

    def test_edge_mask_restricts(self):
        g = path_graph(3)
        mask = np.array([True, False, False])
        emask = np.zeros(2 * g.m, dtype=bool)  # all edges disabled
        got = neighbor_any(mask, g.edge_src, g.edge_dst, g.n, edge_mask=emask)
        assert not got.any()


class TestNeighborMax:
    def test_matches_brute_force(self):
        g = grid_graph(3, 6)
        rng = np.random.default_rng(1)
        values = rng.integers(0, 100, g.n)
        got = neighbor_max(values, g.edge_src, g.edge_dst, g.n)
        assert np.array_equal(got, brute_max(g, values))

    def test_fill_value(self):
        from repro.graphs.generators import empty_graph

        g = empty_graph(3)
        values = np.array([5, 6, 7])
        got = neighbor_max(values, g.edge_src, g.edge_dst, g.n, fill=-9)
        assert got.tolist() == [-9, -9, -9]


class TestNeighborCount:
    def test_counts_star(self):
        g = star_graph(6)
        mask = np.ones(6, dtype=bool)
        got = neighbor_count(mask, g.edge_src, g.edge_dst, g.n)
        assert got.tolist() == [5, 1, 1, 1, 1, 1]

    def test_masked_counts(self):
        g = star_graph(6)
        mask = np.array([True, True, True, False, False, False])
        got = neighbor_count(mask, g.edge_src, g.edge_dst, g.n)
        assert got[0] == 2


class TestEdgeBoth:
    def test_selects_internal_edges(self):
        g = path_graph(4)
        mask = np.array([True, True, False, True])
        emask = edge_both(mask, g.edge_src, g.edge_dst)
        kept = set(
            zip(g.edge_src[emask].tolist(), g.edge_dst[emask].tolist())
        )
        assert kept == {(0, 1), (1, 0)}


class TestPriorityKeys:
    def test_ids_recoverable(self):
        rng = np.random.default_rng(0)
        keys = priority_keys(rng, 10)
        id_bits = int(9).bit_length()
        assert np.array_equal(keys & ((1 << id_bits) - 1), np.arange(10))

    def test_all_distinct(self):
        rng = np.random.default_rng(0)
        keys = priority_keys(rng, 1000)
        assert len(np.unique(keys)) == 1000

    def test_too_large_n_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            priority_keys(rng, 2**25)
