"""Tests for the vectorized Construct_Block, FAIRBIPART, and COLORMIS."""

import numpy as np
import pytest

from repro.analysis import is_maximal_independent_set, run_trials
from repro.fast.blocks import (
    FastColorMIS,
    FastFairBipart,
    construct_block_fast,
    draw_radii,
    greedy_coloring_fast,
)
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    grid_graph,
    path_graph,
    random_bipartite,
    random_tree,
    star_graph,
    triangulated_grid,
)


class TestDrawRadii:
    def test_support(self):
        rng = np.random.default_rng(0)
        r = draw_radii(rng, 10000, gamma=6)
        assert r.min() >= 0 and r.max() <= 6

    def test_geometric_marginals(self):
        rng = np.random.default_rng(1)
        r = draw_radii(rng, 40000, gamma=10)
        assert abs(np.mean(r == 0) - 0.5) < 0.02
        assert abs(np.mean(r >= 2) - 0.25) < 0.02

    def test_truncation_mass(self):
        rng = np.random.default_rng(2)
        r = draw_radii(rng, 40000, gamma=2)
        assert abs(np.mean(r == 2) - 0.25) < 0.02


class TestConstructBlock:
    def test_lemma12_connected_nonboundary_same_leader(self, rng):
        """Lemma 12(ii): adjacent block members share their leader."""
        for seed in range(5):
            g = random_tree(60, seed=seed).graph
            bits = rng.integers(0, 2, g.n)
            in_block, leader, _ = construct_block_fast(
                g, rng, gamma=12, values=bits, mode="bit", value_base=2
            )
            es, ed = g.edge_src, g.edge_dst
            both = in_block[es] & in_block[ed]
            assert np.all(leader[es[both]] == leader[ed[both]])

    def test_block_probability_lemma12(self, rng):
        """Lemma 12(i): each node joins a block w.p. >= p(1-p^γ)^n."""
        g = path_graph(12)
        gamma = 8
        trials = 1500
        counts = np.zeros(12)
        for _ in range(trials):
            bits = rng.integers(0, 2, 12)
            in_block, _, _ = construct_block_fast(
                g, rng, gamma=gamma, values=bits, mode="bit", value_base=2
            )
            counts += in_block
        freqs = counts / trials
        bound = 0.5 * (1 - 0.5**gamma) ** 12
        assert freqs.min() >= bound - 3 * np.sqrt(0.25 / trials)

    def test_bit_parity_consistency(self, rng):
        """In a bipartite graph, two adjacent members of the same block
        must read opposite bits (this is what makes I independent)."""
        for seed in range(5):
            g = random_tree(40, seed=seed).graph
            bits = rng.integers(0, 2, g.n)
            in_block, leader, val = construct_block_fast(
                g, rng, gamma=12, values=bits, mode="bit", value_base=2
            )
            es, ed = g.edge_src, g.edge_dst
            both = in_block[es] & in_block[ed]
            assert np.all(val[es[both]] != val[ed[both]])

    def test_color_mode_propagates_unchanged(self, rng):
        g = star_graph(10)
        colors = np.arange(10) % 4
        in_block, leader, val = construct_block_fast(
            g, rng, gamma=6, values=colors, mode="color", value_base=4
        )
        members = np.nonzero(in_block)[0]
        for v in members.tolist():
            assert val[v] == colors[leader[v]]

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            construct_block_fast(
                path_graph(3),
                rng,
                gamma=2,
                values=np.zeros(3, dtype=np.int64),
                mode="x",
                value_base=2,
            )


class TestFastFairBipart:
    def test_valid(self, rng):
        alg = FastFairBipart(validate=True)
        for g in [
            grid_graph(6, 6),
            random_bipartite(10, 10, 0.2, seed=1),
            random_tree(60, seed=2).graph,
            complete_bipartite(4, 5),
            cycle_graph(9),  # non-bipartite: still a correct MIS
        ]:
            for _ in range(3):
                alg.run(g, rng)

    def test_theorem13_min_probability(self, rng, thorough):
        trials = 3000 if thorough else 1000
        g = grid_graph(4, 4)
        est = run_trials(FastFairBipart(), g, trials, seed=0)
        slack = 3 * np.sqrt(0.125 * 0.875 / trials)
        assert est.min_probability >= 0.125 - slack

    def test_inequality_below_8(self, rng):
        g = random_tree(50, seed=3).graph
        est = run_trials(FastFairBipart(), g, 1500, seed=0)
        lower, _ = est.inequality_bounds()
        assert lower <= 8.0

    def test_larger_gamma_fairer(self, rng):
        """§VI-C: growing c drives inequality toward 4."""
        g = path_graph(30)
        small = run_trials(FastFairBipart(gamma_c=1.0), g, 1500, seed=0)
        large = run_trials(FastFairBipart(gamma_c=4.0), g, 1500, seed=0)
        assert large.min_probability >= small.min_probability - 0.03

    def test_block_fraction_reported(self, rng):
        res = FastFairBipart().run(grid_graph(4, 4), rng)
        assert 0.0 <= res.info["block_fraction"] <= 1.0


class TestGreedyColoringFast:
    def test_proper(self, rng):
        for g in [grid_graph(6, 6), triangulated_grid(5, 5), cycle_graph(9)]:
            colors = greedy_coloring_fast(g, rng, iterations=60)
            es, ed = g.edge_src, g.edge_dst
            both = (colors[es] >= 0) & (colors[ed] >= 0)
            assert not np.any((colors[es] == colors[ed]) & both)

    def test_palette_bound(self, rng):
        g = star_graph(12)
        colors = greedy_coloring_fast(g, rng, iterations=60)
        assert colors.max() <= g.max_degree

    def test_converges(self, rng):
        g = random_tree(100, seed=1).graph
        colors = greedy_coloring_fast(g, rng, iterations=80)
        assert np.all(colors >= 0)


class TestFastColorMIS:
    def test_valid(self, rng):
        alg = FastColorMIS(validate=True)
        for g in [
            triangulated_grid(5, 5),
            grid_graph(5, 5),
            random_tree(50, seed=4).graph,
            cycle_graph(11),
        ]:
            for _ in range(3):
                alg.run(g, rng)

    def test_every_node_joins_eventually(self, rng):
        g = path_graph(8)
        est = run_trials(FastColorMIS(), g, 400, seed=0)
        assert est.min_probability > 0

    def test_k_reported(self, rng):
        g = star_graph(7)
        res = FastColorMIS().run(g, rng)
        assert res.info["k"] == 7


class TestArboricityColoringFast:
    def test_proper_and_small_palette(self, rng):
        import numpy as np

        from repro.fast.blocks import arboricity_coloring_fast
        from repro.graphs.generators import apex_grid

        g = apex_grid(8, 8)
        colors = arboricity_coloring_fast(g, rng, cap=7, iterations=60)
        es, ed = g.edge_src, g.edge_dst
        both = (colors[es] >= 0) & (colors[ed] >= 0)
        assert not np.any((colors[es] == colors[ed]) & both)
        assert colors.max() <= 7  # far below Δ+1

    def test_tree_needs_three_colors(self, rng):
        import numpy as np

        from repro.fast.blocks import arboricity_coloring_fast
        from repro.graphs.generators import random_tree

        g = random_tree(80, seed=1).graph
        colors = arboricity_coloring_fast(g, rng, cap=2, iterations=60)
        assert np.all(colors >= 0)
        assert colors.max() <= 2

    def test_colormis_arboricity_variant(self, rng):
        from repro.fast.blocks import FastColorMIS
        from repro.graphs.generators import apex_grid

        alg = FastColorMIS(coloring="arboricity", validate=True)
        res = alg.run(apex_grid(6, 6), rng)
        assert res.info["k"] <= 9

    def test_corollary18_shape(self, rng):
        """On the apex grid, arboricity-COLORMIS must beat greedy-COLORMIS
        on fairness (smaller k → smaller inequality, Theorem 17)."""
        from repro.analysis import run_trials
        from repro.fast.blocks import FastColorMIS
        from repro.graphs.generators import apex_grid

        g = apex_grid(8, 8)
        arb = run_trials(FastColorMIS(coloring="arboricity"), g, 600, seed=0)
        greedy = run_trials(FastColorMIS(coloring="greedy"), g, 600, seed=0)
        assert arb.min_probability > greedy.min_probability

    def test_name(self):
        from repro.fast.blocks import FastColorMIS

        assert FastColorMIS(coloring="arboricity").name == "color_mis_arb_fast"
