"""Tests for the vectorized CNTRLFAIRBIPART kernel."""

import numpy as np

from repro.analysis import is_maximal_independent_set
from repro.fast.cfb import cfb_fast
from repro.graphs.generators import path_graph, random_tree, star_graph


class TestCfbFast:
    def test_full_tree_is_mis(self, rng):
        for seed in range(4):
            g = random_tree(40, seed=seed).graph
            d = g.diameter()
            joined = cfb_fast(g, rng, d_hat=max(d, 1), active=np.ones(g.n, bool))
            assert is_maximal_independent_set(g, joined)

    def test_join_probability_half(self, rng):
        g = path_graph(6)
        trials = 1500
        counts = np.zeros(6)
        for _ in range(trials):
            counts += cfb_fast(g, rng, d_hat=6, active=np.ones(6, bool))
        freqs = counts / trials
        assert np.all(np.abs(freqs - 0.5) < 0.06)

    def test_isolated_active_node_joins(self, rng):
        g = path_graph(3)
        active = np.array([True, False, True])
        joined = cfb_fast(g, rng, d_hat=3, active=active)
        assert joined[0] and joined[2]

    def test_inactive_nodes_never_join(self, rng):
        g = star_graph(8)
        active = np.zeros(8, dtype=bool)
        active[1:4] = True
        for _ in range(10):
            joined = cfb_fast(g, rng, d_hat=4, active=active)
            assert not joined[0] and not joined[4:].any()

    def test_edge_mask_partitions(self, rng):
        """Cutting the middle edge of a path creates two components, each
        covered independently."""
        g = path_graph(6)
        emask = ~((g.edge_src == 2) & (g.edge_dst == 3))
        emask &= ~((g.edge_src == 3) & (g.edge_dst == 2))
        joined = cfb_fast(g, rng, d_hat=4, active=np.ones(6, bool), edge_mask=emask)
        left, right = joined[:3], joined[3:]
        # each side of the cut is independently an alternating MIS
        assert left.tolist() in ([True, False, True], [False, True, False])
        assert right.tolist() in ([True, False, True], [False, True, False])

    def test_small_d_hat_leaves_far_nodes_out(self, rng):
        g = path_graph(30)
        joined = cfb_fast(g, rng, d_hat=2, active=np.ones(30, bool))
        # with D̂=2 the BFS reaches ≤ 2 hops from each self-elected leader;
        # certainly not all 30 nodes can be covered
        covered = joined.copy()
        covered[g.edge_dst[joined[g.edge_src]]] = True
        assert not covered.all()

    def test_alternation_within_leader_region(self, rng):
        g = path_graph(9)
        joined = cfb_fast(g, rng, d_hat=9, active=np.ones(9, bool))
        assert joined.tolist() in (
            [True, False] * 4 + [True],
            [False, True] * 4 + [False],
        )
