"""Tests for the vectorized FAIRROOTED engine and vectorized CV."""

import numpy as np

from repro.analysis import is_maximal_independent_set, run_trials
from repro.fast.fair_rooted import (
    FastFairRooted,
    cole_vishkin_colors,
    fair_rooted_run,
)
from repro.graphs import RootedTree
from repro.graphs.generators import complete_tree, path_graph, random_tree, star_graph


class TestVectorizedCV:
    def test_colors_in_range(self):
        t = random_tree(200, seed=0)
        colors = cole_vishkin_colors(t.n, t.parent, np.ones(t.n, bool))
        assert colors.min() >= 0 and colors.max() <= 5

    def test_colors_proper(self):
        t = random_tree(300, seed=1)
        colors = cole_vishkin_colors(t.n, t.parent, np.ones(t.n, bool))
        g = t.graph
        assert not np.any(colors[g.edge_src] == colors[g.edge_dst])

    def test_partial_participation(self):
        t = path_graph(10)
        rooted = RootedTree.from_graph(t)
        part = np.zeros(10, dtype=bool)
        part[2:7] = True
        # parents must be restricted to participants
        safe = np.where(rooted.parent >= 0, rooted.parent, 0)
        parent_ok = part & (rooted.parent >= 0) & part[safe]
        parent = np.where(parent_ok, rooted.parent, -1)
        colors = cole_vishkin_colors(10, parent, part)
        assert np.all(colors[~part] == -1)
        assert np.all(colors[part] >= 0)

    def test_deep_path_proper(self):
        g = path_graph(2000)
        rooted = RootedTree.from_graph(g)
        colors = cole_vishkin_colors(g.n, rooted.parent, np.ones(g.n, bool))
        assert not np.any(colors[g.edge_src] == colors[g.edge_dst])
        assert colors.max() <= 5


class TestFastFairRooted:
    def test_valid(self, rng):
        alg = FastFairRooted(validate=True)
        for seed in range(4):
            g = random_tree(60, seed=seed).graph
            for _ in range(3):
                alg.run(g, rng)

    def test_star_nearly_perfectly_fair(self, rng):
        g = star_graph(20)
        est = run_trials(FastFairRooted(), g, 2000, seed=0)
        # rooted at the center: every node joins w.p. ~1/2 after stage 1,
        # and CV cleans up symmetrically → inequality near 1
        assert est.inequality <= 1.4

    def test_theorem3_bound(self, rng, thorough):
        trials = 4000 if thorough else 1200
        g = random_tree(30, seed=5).graph
        est = run_trials(FastFairRooted(), g, trials, seed=0)
        slack = 3 * np.sqrt(0.25 * 0.75 / trials)
        assert est.min_probability >= 0.25 - slack
        assert est.inequality <= 4 / (0.25 - slack) * 0.25 + 0.6

    def test_explicit_rooting(self, rng):
        t = complete_tree(3, 3)
        alg = FastFairRooted(tree=t, validate=True)
        alg.run(t.graph, rng)

    def test_function_form(self, rng):
        t = complete_tree(2, 3)
        member, info = fair_rooted_run(t.graph, t.parent, rng)
        assert is_maximal_independent_set(t.graph, member)
        assert "stage1_size" in info
