"""Tests for the vectorized FAIRTREE engine."""

import numpy as np

from repro.analysis import is_maximal_independent_set, run_trials
from repro.fast.fair_tree import FastFairTree, fair_tree_run
from repro.graphs.generators import (
    caterpillar,
    cycle_graph,
    path_graph,
    random_tree,
    singleton,
    star_graph,
)


class TestCorrectness:
    def test_valid_on_trees(self, rng):
        alg = FastFairTree(validate=True)
        for seed in range(5):
            g = random_tree(80, seed=seed).graph
            for _ in range(3):
                alg.run(g, rng)  # validate=True raises on violation

    def test_valid_on_star_and_caterpillar(self, rng):
        alg = FastFairTree(validate=True)
        alg.run(star_graph(30), rng)
        alg.run(caterpillar(6, 4).graph, rng)

    def test_valid_on_cycles_via_fallback(self, rng):
        alg = FastFairTree(validate=True)
        for _ in range(5):
            alg.run(cycle_graph(11), rng)

    def test_singleton(self, rng):
        res = FastFairTree().run(singleton(), rng)
        assert res.membership.tolist() == [True]

    def test_tiny_gamma_correct(self, rng):
        alg = FastFairTree(gamma=1, validate=True)
        for _ in range(5):
            alg.run(random_tree(40, seed=1).graph, rng)


class TestFairness:
    def test_theorem8_min_probability(self, rng, thorough):
        trials = 4000 if thorough else 1200
        g = random_tree(40, seed=7).graph
        est = run_trials(FastFairTree(), g, trials, seed=0)
        slack = 3 * np.sqrt(0.25 * 0.75 / trials)
        assert est.min_probability >= 0.25 - slack

    def test_inequality_small_on_star(self, rng):
        g = star_graph(40)
        est = run_trials(FastFairTree(), g, 1200, seed=0)
        assert est.inequality <= 4.5

    def test_path_fairness(self, rng):
        g = path_graph(15)
        est = run_trials(FastFairTree(), g, 1500, seed=1)
        assert est.inequality <= 4.5


class TestInfo:
    def test_fallback_rare_with_default_gamma(self, rng):
        g = random_tree(60, seed=2).graph
        fallbacks = 0
        for _ in range(50):
            res = FastFairTree().run(g, rng)
            fallbacks += bool(res.info["fallback_used"])
        assert fallbacks <= 2  # ε ≤ 1/n ≈ 0.017 per run

    def test_fallback_frequent_with_tiny_gamma(self, rng):
        g = path_graph(50)
        fallbacks = 0
        for _ in range(20):
            res = FastFairTree(gamma=1).run(g, rng)
            fallbacks += bool(res.info["fallback_used"])
        assert fallbacks >= 10

    def test_gamma_recorded(self, rng):
        res = FastFairTree(gamma=6).run(path_graph(8), rng)
        assert res.info["gamma"] == 6

    def test_function_form(self, rng):
        member, info = fair_tree_run(path_graph(8), rng, gamma=8)
        assert member.dtype == bool
        assert "fallback_nodes" in info
