"""Tests for the vectorized Luby engines."""

import numpy as np
import pytest

from repro.analysis import is_maximal_independent_set
from repro.fast.luby import FastLuby, luby_degree_sweep, luby_sweep
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    random_tree,
    star_graph,
)


class TestLubySweep:
    def test_valid_on_many_graphs(self, rng):
        for g in [
            random_tree(60, seed=0).graph,
            grid_graph(6, 6),
            cycle_graph(11),
            complete_graph(8),
            star_graph(20),
        ]:
            for _ in range(3):
                member, _ = luby_sweep(g, rng)
                assert is_maximal_independent_set(g, member)

    def test_isolated_all_join(self, rng):
        member, iters = luby_sweep(empty_graph(6), rng)
        assert member.all()
        assert iters == 1

    def test_restricted_active_set(self, rng):
        g = grid_graph(4, 4)
        active = np.zeros(16, dtype=bool)
        active[:8] = True
        member, _ = luby_sweep(g, rng, active=active)
        assert not member[8:].any()
        sub = g.subgraph_mask(active)
        # membership restricted to the active half must be an MIS there
        m = member & active
        es, ed = sub.edge_src, sub.edge_dst
        assert not np.any(m[es] & m[ed])

    def test_iterations_logarithmic(self, rng):
        g = random_tree(500, seed=1).graph
        iters = [luby_sweep(g, rng)[1] for _ in range(5)]
        assert max(iters) < 30

    def test_star_center_rare(self, rng):
        g = star_graph(16)
        joins = sum(luby_sweep(g, rng)[0][0] for _ in range(600))
        assert joins / 600 < 0.15  # exact probability 1/16


class TestLubyDegreeSweep:
    def test_valid(self, rng):
        for g in [
            random_tree(50, seed=2).graph,
            complete_graph(6),
            star_graph(12),
        ]:
            member, _ = luby_degree_sweep(g, rng)
            assert is_maximal_independent_set(g, member)

    def test_isolated_all_join(self, rng):
        member, _ = luby_degree_sweep(empty_graph(4), rng)
        assert member.all()


class TestFastLubyAlgorithm:
    def test_validate_flag(self, rng):
        res = FastLuby(validate=True).run(grid_graph(5, 5), rng)
        assert res.info["engine"] == "fast"

    def test_variant_names(self):
        assert FastLuby().name == "luby_fast"
        assert FastLuby("degree").name == "luby_degree_fast"

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            FastLuby("bogus")

    def test_deterministic_given_rng_state(self):
        g = random_tree(40, seed=3).graph
        a = FastLuby().run(g, np.random.default_rng(7)).membership
        b = FastLuby().run(g, np.random.default_rng(7)).membership
        assert np.array_equal(a, b)
