"""Peak-hold admission control in isolation (fake clock throughout)."""

import pytest

from repro.frontend.admission import (
    AdmissionController,
    LastWindowEstimator,
    PeakHoldEstimator,
    TokenBucket,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestPeakHoldEstimator:
    def test_monotone_peak_capture(self):
        clock = FakeClock()
        est = PeakHoldEstimator(half_life_s=30.0, clock=clock)
        for load in (0.1, 0.5, 0.3, 0.9, 0.2):
            est.observe(load)
        assert est.peak == pytest.approx(0.9)
        assert est.current == pytest.approx(0.2)

    def test_exponential_decay_half_life(self):
        clock = FakeClock()
        est = PeakHoldEstimator(half_life_s=10.0, clock=clock)
        est.observe(2.0)
        clock.advance(10.0)
        assert est.peak == pytest.approx(1.0)
        clock.advance(10.0)
        assert est.peak == pytest.approx(0.5)

    def test_decay_is_slow_relative_to_bursts(self):
        # A burst that ended 1s ago must still dominate the estimate.
        clock = FakeClock()
        est = PeakHoldEstimator(half_life_s=30.0, clock=clock)
        est.observe(1.5)
        clock.advance(1.0)
        est.observe(0.0)  # quiet sample does not erase the held peak
        assert est.peak > 1.4

    def test_new_peak_replaces_decayed_one(self):
        clock = FakeClock()
        est = PeakHoldEstimator(half_life_s=10.0, clock=clock)
        est.observe(1.0)
        clock.advance(50.0)  # held peak decayed to ~0.03
        est.observe(0.8)
        assert est.peak == pytest.approx(0.8)

    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ValueError):
            PeakHoldEstimator(half_life_s=0.0)


class TestLastWindowEstimator:
    def test_mean_over_window(self):
        clock = FakeClock()
        est = LastWindowEstimator(window_s=10.0, clock=clock)
        est.observe(1.0)
        clock.advance(1.0)
        est.observe(0.0)
        assert est.peak == pytest.approx(0.5)

    def test_forgets_outside_window(self):
        clock = FakeClock()
        est = LastWindowEstimator(window_s=5.0, clock=clock)
        est.observe(2.0)
        clock.advance(6.0)
        est.observe(0.0)
        assert est.peak == pytest.approx(0.0)


class TestAdmissionController:
    def test_admits_everything_below_threshold(self):
        clock = FakeClock()
        ctl = AdmissionController(
            PeakHoldEstimator(clock=clock), shed_threshold=0.85
        )
        assert all(ctl.admit(0.3) for _ in range(50))

    def test_fraction_tracks_held_peak(self):
        clock = FakeClock()
        ctl = AdmissionController(
            PeakHoldEstimator(clock=clock), shed_threshold=0.8
        )
        ctl.observe(1.6)
        assert ctl.admit_fraction() == pytest.approx(0.5)

    def test_credit_accumulator_is_deterministic(self):
        # Fraction 0.5 must admit exactly every other request.
        clock = FakeClock()
        ctl = AdmissionController(
            PeakHoldEstimator(clock=clock), shed_threshold=0.8
        )
        ctl.observe(1.6)
        decisions = [ctl.admit() for _ in range(10)]
        assert decisions == [False, True] * 5

    def test_min_admit_floor(self):
        clock = FakeClock()
        ctl = AdmissionController(
            PeakHoldEstimator(clock=clock),
            shed_threshold=0.5,
            min_admit=0.2,
        )
        ctl.observe(1000.0)
        assert ctl.admit_fraction() == pytest.approx(0.2)

    def test_square_wave_peak_hold_stable_while_last_window_bounces(self):
        """The satellite's headline property, on a bursty square wave.

        Traffic alternates 5s bursts at load 1.6 with 15s quiet at 0.2.
        A last-window estimator forgets each burst as soon as it leaves
        the window, so its admit fraction bounces between full-open and
        half-shut; the peak-hold estimate barely moves (60s half-life
        across a 20s period), holding a stable admit rate.
        """

        def drive(make_ctl):
            clock = FakeClock()
            ctl = make_ctl(clock)
            fractions = []
            for _cycle in range(6):
                for _ in range(5):  # burst: 1 sample/s at load 1.6
                    ctl.admit(1.6)
                    clock.advance(1.0)
                for _ in range(15):  # quiet: load 0.2
                    ctl.admit(0.2)
                    fractions.append(ctl.admit_fraction())
                    clock.advance(1.0)
            # Skip the first cycle: both estimators start cold.
            return fractions[15:]

        peak_hold = drive(
            lambda c: AdmissionController(
                PeakHoldEstimator(half_life_s=60.0, clock=c),
                shed_threshold=0.8,
            )
        )
        last_window = drive(
            lambda c: AdmissionController(
                LastWindowEstimator(window_s=5.0, clock=c),
                shed_threshold=0.8,
            )
        )

        # The naive estimator bounces: inside each quiet stretch it
        # swings all the way back to fully open after throttling.
        assert min(last_window) < 0.75
        assert max(last_window) == pytest.approx(1.0)
        bounce_naive = max(last_window) - min(last_window)

        # Peak-hold stays throttled and tight across the same trace.
        assert max(peak_hold) < 0.75
        bounce_peak = max(peak_hold) - min(peak_hold)
        assert bounce_peak < bounce_naive / 3


class TestTokenBucket:
    def test_burst_then_sustained_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.allow() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # refills one token at 2/s
        assert bucket.allow()
        assert not bucket.allow()

    def test_tokens_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)
