"""Wire-protocol hardening: every bad line becomes a structured error."""

import json

import pytest

from repro.frontend.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    ERROR_CODES,
    error_payload,
    parse_request_line,
)


class TestErrorPayload:
    def test_v1_shape_keeps_error_as_message_string(self):
        out = error_payload("bad_json", "boom", line=3)
        # Back-compat: existing clients check `"error" in obj` and read
        # the message straight out of it.
        assert out["error"] == "boom"
        assert out["code"] == "bad_json"
        assert out["line"] == 3

    def test_v2_shape_nests_code_and_message(self):
        out = error_payload(
            "overloaded", "try later", version=2, request_id="r1", line=7
        )
        assert out["v"] == 2
        assert out["error"] == {"code": "overloaded", "message": "try later"}
        assert out["line"] == 7
        assert out["id"] == "r1"

    def test_extra_fields_ride_along(self):
        v1 = error_payload("line_too_large", "big", max_bytes=10)
        assert v1["max_bytes"] == 10
        v2 = error_payload("line_too_large", "big", version=2, max_bytes=10)
        assert v2["error"]["max_bytes"] == 10

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            error_payload("nope", "msg")

    def test_all_documented_codes_build(self):
        for code in ERROR_CODES:
            assert error_payload(code, "m", version=2)["error"]["code"] == code


class TestParseRequestLine:
    def test_valid_v1_line(self):
        parsed = parse_request_line(
            '{"graph": "tree:50:1", "algorithm": "luby_fast", "trials": 10}'
        )
        assert parsed.ok
        assert parsed.version == 1
        assert parsed.request.graph_spec == "tree:50:1"

    def test_valid_v2_line(self):
        parsed = parse_request_line(
            '{"v": 2, "graph": "tree:50:1", "algorithm": "luby_fast",'
            ' "precision": {"node_ci": 0.1}}'
        )
        assert parsed.ok
        assert parsed.version == 2

    def test_malformed_json(self):
        parsed = parse_request_line("{not json", lineno=4)
        assert not parsed.ok
        assert parsed.error["code"] == "bad_json"
        assert parsed.error["line"] == 4
        assert "error" in parsed.error  # v1 shape for undecodable input

    def test_non_object_json(self):
        parsed = parse_request_line("[1, 2, 3]")
        assert not parsed.ok
        assert parsed.error["code"] == "bad_json"

    def test_unknown_version_answers_in_v2_shape(self):
        parsed = parse_request_line('{"v": 99, "graph": "tree:10", "id": "x"}')
        assert not parsed.ok
        err = parsed.error
        assert err["v"] == 2
        assert err["error"]["code"] == "unsupported_version"
        assert err["error"]["supported"] == [1, 2]
        assert err["id"] == "x"

    def test_non_integer_version(self):
        parsed = parse_request_line('{"v": "two", "graph": "tree:10"}')
        assert not parsed.ok
        assert parsed.error["error"]["code"] == "unsupported_version"

    def test_oversized_line(self):
        line = json.dumps({"graph": "tree:10", "pad": "x" * 100})
        parsed = parse_request_line(line, max_bytes=32, lineno=1)
        assert not parsed.ok
        assert parsed.error["code"] == "line_too_large"
        assert parsed.error["max_bytes"] == 32

    def test_default_cap_is_generous(self):
        line = json.dumps({"graph": "tree:10", "trials": 5})
        assert len(line) < DEFAULT_MAX_LINE_BYTES
        assert parse_request_line(line).ok

    def test_schema_violation_v1(self):
        parsed = parse_request_line('{"algorithm": "luby_fast"}', lineno=2)
        assert not parsed.ok
        assert parsed.error["code"] == "bad_request"
        assert parsed.error["line"] == 2
        assert "graph" in parsed.error["error"]

    def test_schema_violation_v2_shape(self):
        parsed = parse_request_line(
            '{"v": 2, "graph": "tree:10", "bogus_field": 1, "id": 7}'
        )
        assert not parsed.ok
        err = parsed.error
        assert err["v"] == 2
        assert err["error"]["code"] == "bad_request"
        assert err["id"] == "7"

    def test_default_mode_injected(self):
        parsed = parse_request_line(
            '{"graph": "tree:10", "trials": 5}', default_mode="exact"
        )
        assert parsed.ok
        assert parsed.request.mode == "exact"

    def test_explicit_mode_wins_over_default(self):
        parsed = parse_request_line(
            '{"graph": "tree:10", "trials": 5, "mode": "vectorized"}',
            default_mode="exact",
        )
        assert parsed.ok
        assert parsed.request.mode == "vectorized"
