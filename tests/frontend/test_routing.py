"""Rendezvous routing: pinning, balance, and minimal churn."""

from repro.frontend.routing import RendezvousRouter, routing_key
from repro.graphs.spec import GraphSpec


class TestRoutingKey:
    def test_canonicalizes_spelling_variants(self):
        spec = "tree:200:1"
        assert routing_key(spec) == GraphSpec.parse(spec).canonical

    def test_unparsable_spec_routes_on_raw_text(self):
        assert routing_key("donut:9") == "donut:9"
        assert routing_key("donut:9") == routing_key("donut:9")


class TestRendezvousRouter:
    def test_deterministic(self):
        a = RendezvousRouter(4)
        b = RendezvousRouter(4)
        for n in range(50):
            spec = f"tree:{100 + n}:1"
            assert a.shard_for(spec) == b.shard_for(spec)

    def test_single_shard(self):
        router = RendezvousRouter(1)
        assert router.shard_for("tree:100:1") == 0

    def test_same_graph_same_shard_always(self):
        router = RendezvousRouter(4)
        first = router.shard_for("tree:500:7")
        assert all(
            router.shard_for("tree:500:7") == first for _ in range(20)
        )

    def test_all_shards_used(self):
        router = RendezvousRouter(4)
        seen = {router.shard_for(f"tree:{n}:1") for n in range(10, 210)}
        assert seen == {0, 1, 2, 3}

    def test_roughly_balanced(self):
        router = RendezvousRouter(4)
        counts = [0, 0, 0, 0]
        total = 400
        for n in range(total):
            counts[router.shard_for(f"grid:{10 + n}x{20 + n}")] += 1
        # Each shard should get 25% ± a generous band.
        for c in counts:
            assert total * 0.10 < c < total * 0.45, counts

    def test_minimal_churn_on_scale_out(self):
        # Rendezvous property: adding a shard only moves the keys that
        # land on the new shard; every other key keeps its old home.
        before = RendezvousRouter(4)
        after = RendezvousRouter(5)
        keys = [f"tree:{n}:3" for n in range(300)]
        moved = 0
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            if new != old:
                moved += 1
                assert new == 4, (key, old, new)
        # Expect ~1/5 of keys to move; allow a wide statistical band.
        assert moved < len(keys) * 0.35

    def test_rejects_zero_shards(self):
        import pytest

        with pytest.raises(ValueError):
            RendezvousRouter(0)
