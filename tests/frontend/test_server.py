"""Front-end pipeline and TCP plane.

The unit tests drive :meth:`Frontend.handle_line` directly (no shard
processes are started — paths that would reach a shard come back as
structured ``shard_unavailable``, which is itself part of the
contract).  The end-to-end test spawns real ``serve`` shard
subprocesses behind a TCP socket and checks the sharded warm path.
"""

import asyncio
import contextlib
import json

import pytest

from repro.frontend import (
    Frontend,
    FrontendConfig,
    LoadReport,
    run_loadgen,
    run_tcp_server,
)
from repro.frontend.server import _LineReader
from repro.obs.metrics import MetricsRegistry


def _run(coro):
    return asyncio.run(coro)


def _frontend(**kwargs) -> Frontend:
    return Frontend(FrontendConfig(**kwargs), registry=MetricsRegistry())


class TestHandleLine:
    def test_parse_error_is_structured(self):
        fe = _frontend()
        out = json.loads(_run(fe.handle_line("{nope", lineno=1)))
        assert out["code"] == "bad_json"
        assert out["line"] == 1

    def test_unsupported_version_v2_shape(self):
        fe = _frontend()
        out = json.loads(_run(fe.handle_line('{"v": 9, "graph": "tree:10"}')))
        assert out["error"]["code"] == "unsupported_version"

    def test_oversized_line(self):
        fe = _frontend(max_line_bytes=64)
        raw = json.dumps({"graph": "tree:10", "pad": "x" * 200})
        out = json.loads(_run(fe.handle_line(raw)))
        assert out["code"] == "line_too_large"

    def test_shard_unavailable_when_not_started(self):
        fe = _frontend()
        out = json.loads(
            _run(
                fe.handle_line(
                    '{"graph": "tree:10", "trials": 5, "id": "q"}'
                )
            )
        )
        assert out["code"] == "shard_unavailable"
        assert out["id"] == "q"

    def test_rate_limit_kicks_in(self):
        fe = _frontend(rate_limit=1.0, rate_burst=1.0)

        async def scenario():
            first = await fe.handle_line(
                '{"graph": "tree:10", "trials": 5}', client="10.0.0.1"
            )
            second = await fe.handle_line(
                '{"graph": "tree:10", "trials": 5}', client="10.0.0.1"
            )
            other = await fe.handle_line(
                '{"graph": "tree:10", "trials": 5}', client="10.0.0.2"
            )
            return first, second, other

        first, second, other = _run(scenario())
        # First spends the only token (then dies on the absent shard —
        # past the limiter); second is rate-limited; a different client
        # has its own bucket.
        assert json.loads(first)["code"] == "shard_unavailable"
        assert json.loads(second)["code"] == "rate_limited"
        assert json.loads(other)["code"] == "shard_unavailable"

    def test_full_queue_sheds_with_overloaded(self):
        fe = _frontend(queue_limit=0)
        out = json.loads(_run(fe.handle_line('{"graph": "tree:10", "trials": 5}')))
        assert out["code"] == "overloaded"
        assert "queue is full" in out["error"]

    def test_held_peak_sheds_fraction_deterministically(self):
        fe = _frontend(shed_threshold=0.85)
        fe.admission.observe(10.0)  # a burst pinned the held peak high

        async def scenario():
            return [
                json.loads(
                    await fe.handle_line('{"graph": "tree:10", "trials": 5}')
                )
                for _ in range(10)
            ]

        results = _run(scenario())
        shed = [r for r in results if r.get("code") == "overloaded"]
        # fraction = 0.85/10 → the first ten decisions all shed.
        assert len(shed) == 10
        assert all("peak-hold load" in r["error"] for r in shed)

    def test_v2_request_gets_v2_shaped_shed(self):
        fe = _frontend(queue_limit=0)
        out = json.loads(
            _run(
                fe.handle_line(
                    '{"v": 2, "graph": "tree:10", '
                    '"precision": {"node_ci": 0.1}, "id": "z"}'
                )
            )
        )
        assert out["v"] == 2
        assert out["error"]["code"] == "overloaded"
        assert out["id"] == "z"

    def test_metrics_flow(self):
        fe = _frontend(queue_limit=0)
        _run(fe.handle_line('{"graph": "tree:10", "trials": 5}'))
        _run(fe.handle_line("{nope"))
        snap = fe.stats_snapshot()
        counters = snap["metrics"]["counters"]
        assert counters["frontend_requests_total"][""] == 2
        assert counters["frontend_shed_total"][""] == 1
        assert sum(counters["frontend_errors_total"].values()) == 2


class TestLineReader:
    @staticmethod
    def _feed(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        if eof:
            reader.feed_eof()
        return reader

    def test_plain_lines(self):
        async def scenario():
            lines = _LineReader(self._feed(b"one\ntwo\n"), max_bytes=1024)
            assert await lines.readline() == ("one", False)
            assert await lines.readline() == ("two", False)
            assert await lines.readline() is None

        _run(scenario())

    def test_trailing_partial_line_at_eof(self):
        async def scenario():
            lines = _LineReader(self._feed(b"tail-no-newline"), max_bytes=1024)
            assert await lines.readline() == ("tail-no-newline", False)
            assert await lines.readline() is None

        _run(scenario())

    def test_oversized_line_resyncs_to_next_request(self):
        async def scenario():
            big = b"x" * 300
            lines = _LineReader(
                self._feed(big + b"\n" + b"ok\n"), max_bytes=100, chunk=64
            )
            item = await lines.readline()
            assert item is not None and item[1] is True
            assert int(item[0]) >= 100  # dropped-byte count
            assert await lines.readline() == ("ok", False)
            assert await lines.readline() is None

        _run(scenario())


@pytest.mark.slow
class TestEndToEnd:
    def test_tcp_sharded_warm_path_and_loadgen(self):
        """Two real shards behind TCP: errors, warm routing, loadgen."""

        async def scenario():
            config = FrontendConfig(
                shards=2,
                shard_jobs=1,
                mode="exact",
                queue_limit=32,
                inherit_shard_stderr=False,
            )
            frontend = Frontend(config, registry=MetricsRegistry())
            ready = asyncio.Event()
            server = asyncio.create_task(
                run_tcp_server(frontend, "127.0.0.1", 0, ready=ready)
            )
            await asyncio.wait_for(ready.wait(), timeout=60)
            port = frontend.bound_port
            assert port

            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def rpc(raw: str) -> dict:
                writer.write(raw.encode() + b"\n")
                await writer.drain()
                return json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=120)
                )

            try:
                # Structured parse errors over the wire.
                assert (await rpc("{nope"))["code"] == "bad_json"
                bad_v = await rpc('{"v": 9, "graph": "tree:40:1"}')
                assert bad_v["error"]["code"] == "unsupported_version"

                # Warm path: the same graph pins to one shard and its
                # second request is a cache hit there.
                req = {
                    "graph": "tree:60:1",
                    "algorithm": "luby_fast",
                    "trials": 30,
                    "seed": 0,
                }
                first = await rpc(json.dumps({**req, "id": "a"}))
                assert "error" not in first, first
                second = await rpc(json.dumps({**req, "id": "b"}))
                assert "error" not in second, second
                assert second["shard"] == first["shard"]
                assert second["cached"] is True
                assert second["trials_run"] == 0
            finally:
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()

            # Open-loop loadgen over the same front end.
            requests = [
                {
                    "graph": "tree:60:1",
                    "algorithm": "luby_fast",
                    "trials": 30,
                    "seed": 0,
                }
                for _ in range(10)
            ]
            report = await run_loadgen(
                "127.0.0.1", port, requests, rate=50.0, slo_ms=5000.0
            )
            assert isinstance(report, LoadReport)
            assert report.offered == 10
            assert report.ok == 10
            assert report.shed == 0
            assert report.cached >= 9  # warmed above; all but races cached
            assert len(set(report.shards_seen)) == 1  # one graph, one shard

            counters = frontend.stats_snapshot()["metrics"]["counters"]
            assert counters["frontend_admitted_total"][""] >= 12

            server.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await server

        _run(scenario())
