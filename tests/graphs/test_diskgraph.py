"""The ``.reprograph`` on-disk columnar format: save, memmap load, errors."""

import numpy as np
import pytest

from repro.graphs import (
    GraphValidationError,
    StaticGraph,
    inspect_reprograph,
    load_reprograph,
    save_reprograph,
)
from repro.graphs.diskgraph import _HEADER_BYTES, REPROGRAPH_MAGIC
from repro.graphs.generators import empty_graph, grid_graph, random_tree


def _tree(n=60, seed=4):
    return random_tree(n, seed).graph


class TestRoundTrip:
    def test_equality_and_hash(self, tmp_path):
        g = _tree()
        p = tmp_path / "g.reprograph"
        nbytes = save_reprograph(p, g)
        assert p.stat().st_size == nbytes
        g2 = load_reprograph(p)
        assert g2 == g
        assert g2.content_hash() == g.content_hash()

    def test_edgeless(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, empty_graph(5))
        g2 = load_reprograph(p)
        assert g2.n == 5 and g2.m == 0

    def test_empty_graph(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, StaticGraph.from_edges(0, []))
        assert load_reprograph(p).n == 0

    def test_csr_arrives_prematerialized(self, tmp_path):
        g = _tree()
        expected = g._csr
        p = tmp_path / "g.reprograph"
        save_reprograph(p, g)
        g2 = load_reprograph(p)
        # no lazy recomputation: the cached_property slot is already
        # filled from the mapped buffers
        assert "_csr" in g2.__dict__
        assert "_content_hash" in g2.__dict__
        indptr, indices = g2._csr
        assert np.array_equal(indptr, expected[0])
        assert np.array_equal(indices, expected[1])

    def test_load_is_memmap_backed(self, tmp_path):
        g = grid_graph(20, 20)
        p = tmp_path / "g.reprograph"
        save_reprograph(p, g)
        g2 = load_reprograph(p)
        assert isinstance(g2.edges, np.memmap)
        indptr, indices = g2._csr
        assert isinstance(indptr, np.memmap)
        assert isinstance(indices, np.memmap)

    def test_loaded_buffers_read_only(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree())
        g2 = load_reprograph(p)
        with pytest.raises(ValueError):
            g2.edges[0, 0] = 99

    def test_behavior_parity_through_csr(self, tmp_path):
        g = _tree()
        p = tmp_path / "g.reprograph"
        save_reprograph(p, g)
        g2 = load_reprograph(p)
        for v in (0, g.n // 2, g.n - 1):
            assert np.array_equal(g2.neighbors(v), g.neighbors(v))
        assert g2.degrees.tolist() == g.degrees.tolist()


class TestCompact:
    def test_round_trip_widens_to_int64(self, tmp_path):
        g = _tree()
        p = tmp_path / "g.reprograph"
        save_reprograph(p, g, compact=True)
        g2 = load_reprograph(p)
        assert g2.edges.dtype == np.int64
        assert g2 == g
        assert g2.content_hash() == g.content_hash()

    def test_halves_edge_buffers(self, tmp_path):
        g = grid_graph(30, 30)
        wide = tmp_path / "wide.reprograph"
        narrow = tmp_path / "narrow.reprograph"
        save_reprograph(wide, g)
        save_reprograph(narrow, g, compact=True)
        assert narrow.stat().st_size < wide.stat().st_size

    def test_flag_recorded(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree(), compact=True)
        assert inspect_reprograph(p)["compact"] is True

    def test_verify_passes(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree(), compact=True)
        load_reprograph(p, verify=True)


class TestVerify:
    def test_verify_ok(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree())
        g2 = load_reprograph(p, verify=True)
        assert g2.m == _tree().m

    def test_verify_catches_flipped_edge_byte(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree())
        head = inspect_reprograph(p)
        with open(p, "r+b") as fh:
            fh.seek(head["edges_offset"])
            fh.write(b"\x07")
        load_reprograph(p)  # unverified load trusts the header
        with pytest.raises(GraphValidationError, match="hash"):
            load_reprograph(p, verify=True)


class TestErrors:
    def test_not_reprograph(self, tmp_path):
        p = tmp_path / "junk.reprograph"
        p.write_bytes(b"\x00" * 200)
        with pytest.raises(GraphValidationError, match="not a .reprograph"):
            load_reprograph(p)

    def test_too_short(self, tmp_path):
        p = tmp_path / "short.reprograph"
        p.write_bytes(REPROGRAPH_MAGIC)
        with pytest.raises(GraphValidationError):
            load_reprograph(p)

    def test_truncated_data(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree())
        full = p.read_bytes()
        p.write_bytes(full[: len(full) - 64])
        with pytest.raises(GraphValidationError, match="truncated"):
            load_reprograph(p)

    def test_unsupported_version(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree())
        with open(p, "r+b") as fh:
            fh.seek(8)
            fh.write(np.uint32(99).tobytes())
        with pytest.raises(GraphValidationError, match="version"):
            load_reprograph(p)

    def test_corrupt_hash_field(self, tmp_path):
        p = tmp_path / "g.reprograph"
        save_reprograph(p, _tree())
        with open(p, "r+b") as fh:
            fh.seek(32)
            fh.write(b"zz not hex digits zz")
        with pytest.raises(GraphValidationError, match="hash"):
            inspect_reprograph(p)

    def test_compact_requires_int32_range(self, tmp_path):
        big = StaticGraph._from_shared_parts(
            np.iinfo(np.int32).max + 2,
            np.empty((0, 2), dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            "0" * 64,
        )
        # _from_shared_parts skips validation, so n can exceed int32
        # without allocating anything — exactly what the guard must catch
        with pytest.raises(GraphValidationError, match="compact"):
            save_reprograph(tmp_path / "g.reprograph", big, compact=True)


class TestInspect:
    def test_metadata(self, tmp_path):
        g = _tree()
        p = tmp_path / "g.reprograph"
        nbytes = save_reprograph(p, g)
        head = inspect_reprograph(p)
        assert head["n"] == g.n
        assert head["m"] == g.m
        assert head["version"] == 1
        assert head["compact"] is False
        assert head["content_hash"] == g.content_hash()
        assert head["file_bytes"] == nbytes
        assert head["edges_offset"] >= _HEADER_BYTES
        assert head["edges_offset"] % 64 == 0
        assert head["indptr_offset"] % 64 == 0
        assert head["indices_offset"] % 64 == 0


class TestIoDispatch:
    def test_save_load_by_suffix(self, tmp_path):
        from repro.graphs.io import load_graph, save_graph

        g = _tree()
        p = tmp_path / "g.reprograph"
        save_graph(p, g)
        assert inspect_reprograph(p)["n"] == g.n
        loaded = load_graph(p)
        assert loaded == g
        assert isinstance(loaded.edges, np.memmap)

    def test_npz_still_npz(self, tmp_path):
        from repro.graphs.io import load_graph, save_graph

        g = _tree()
        p = tmp_path / "g.npz"
        save_graph(p, g)
        loaded = load_graph(p)
        assert loaded == g
        assert not isinstance(loaded.edges, np.memmap)


class TestSharedGraphExport:
    def test_export_from_memmap_loaded_graph(self, tmp_path):
        from repro.graphs import shm_enabled
        from repro.graphs.shm import ShmUnavailable, detach_all, export_graph
        from repro.graphs.shm import attach_graph as _attach

        if not shm_enabled():
            pytest.skip("shared memory disabled")
        g = _tree()
        p = tmp_path / "g.reprograph"
        save_reprograph(p, g)
        loaded = load_reprograph(p)
        try:
            shared = export_graph(loaded)
        except ShmUnavailable:
            pytest.skip("no /dev/shm")
        try:
            attached = _attach(shared.handle)
            assert attached == g
            assert attached.content_hash() == g.content_hash()
            assert np.array_equal(attached._csr[0], g._csr[0])
        finally:
            detach_all()
            shared.close()
