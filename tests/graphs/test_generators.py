"""Unit tests for graph generators, pinned to the paper's sizes."""

import numpy as np
import pytest

from repro.graphs import GraphValidationError
from repro.graphs.generators import (
    alternating_tree,
    broom,
    caterpillar,
    complete_bipartite,
    complete_graph,
    complete_tree,
    cone_graph,
    cycle_graph,
    double_broom,
    empty_graph,
    grid_graph,
    path_graph,
    random_bipartite,
    random_planar_like,
    random_tree,
    singleton,
    spider,
    star_graph,
    triangulated_grid,
)


class TestBasicFamilies:
    def test_empty(self):
        g = empty_graph(4)
        assert g.n == 4 and g.m == 0

    def test_singleton(self):
        assert singleton().n == 1

    def test_path(self):
        g = path_graph(6)
        assert g.m == 5 and g.is_tree()

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.m == 5 and all(d == 2 for d in g.degrees)

    def test_cycle_too_small(self):
        with pytest.raises(GraphValidationError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degrees[0] == 6 and g.is_tree()

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15


class TestPaperTrees:
    """Table I pins exact sizes; these must match."""

    def test_binary_tree_size(self):
        t = complete_tree(2, 10)
        assert t.n == 2047 and t.graph.m == 2046

    def test_five_ary_tree_size(self):
        t = complete_tree(5, 5)
        assert t.n == 3906 and t.graph.m == 3905

    def test_alternating_b10_size(self):
        t = alternating_tree(10, 5)
        assert t.n == 1221 and t.graph.m == 1220

    def test_alternating_b30_size(self):
        t = alternating_tree(30, 3)
        assert t.n == 961 and t.graph.m == 960

    def test_alternating_structure(self):
        t = alternating_tree(4, 4)
        depth = t.depth
        for v in range(t.n):
            kids = t.children(v)
            if kids.size == 0:
                continue
            expect = 4 if depth[v] % 2 == 0 else 1
            assert kids.size == expect

    def test_complete_tree_depth_zero(self):
        t = complete_tree(3, 0)
        assert t.n == 1

    def test_complete_tree_validation(self):
        with pytest.raises(GraphValidationError):
            complete_tree(0, 3)


class TestShapedTrees:
    def test_caterpillar(self):
        t = caterpillar(spine=4, legs_per_node=2)
        assert t.n == 12 and t.graph.is_tree()

    def test_broom(self):
        t = broom(handle=3, bristles=5)
        assert t.n == 8
        assert t.graph.degrees[2] == 6  # handle end holds bristles

    def test_double_broom(self):
        g = double_broom(handle=4, bristles=3)
        assert g.n == 10 and g.is_tree()
        assert g.degrees[0] == 4 and g.degrees[3] == 4

    def test_spider(self):
        t = spider(legs=3, leg_length=2)
        assert t.n == 7
        assert t.graph.degrees[0] == 3

    def test_random_tree_uniform_support(self):
        seen = set()
        for seed in range(30):
            t = random_tree(4, seed=seed)
            seen.add(t.graph.edges.tobytes())
        assert len(seen) > 3  # multiple distinct labeled trees appear

    def test_random_tree_small_sizes(self):
        assert random_tree(1, seed=0).n == 1
        assert random_tree(2, seed=0).graph.m == 1
        assert random_tree(3, seed=0).graph.is_tree()


class TestBipartitePlanar:
    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.m == 12 and g.is_bipartite()

    def test_random_bipartite_is_bipartite(self):
        g = random_bipartite(10, 12, 0.3, seed=5)
        assert g.is_bipartite()

    def test_random_bipartite_p_validated(self):
        with pytest.raises(GraphValidationError):
            random_bipartite(3, 3, 1.5)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12 and g.m == 17 and g.is_bipartite()

    def test_triangulated_grid_not_bipartite(self):
        g = triangulated_grid(3, 3)
        assert not g.is_bipartite()
        assert g.m == 12 + 4  # grid edges + diagonals

    def test_random_planar_like_connected(self):
        g = random_planar_like(40, seed=2)
        assert g.is_connected()
        # Delaunay triangulations are planar: m <= 3n - 6
        assert g.m <= 3 * g.n - 6


class TestConeGraph:
    def test_size(self):
        g = cone_graph(4)
        assert g.n == 9
        # clique on 8 = 28 edges, plus 4 apex edges
        assert g.m == 28 + 4

    def test_apex_degree(self):
        g = cone_graph(5)
        assert g.degrees[0] == 5

    def test_clique_structure(self):
        g = cone_graph(3)
        for i in range(1, 7):
            for j in range(i + 1, 7):
                assert g.has_edge(i, j)

    def test_apex_connects_lower_half_only(self):
        g = cone_graph(3)
        assert g.has_edge(0, 1) and g.has_edge(0, 3)
        assert not g.has_edge(0, 4)

    def test_degree_ratio_constant(self):
        # the paper notes max/min degree ratio is constant in the cone
        g = cone_graph(20)
        assert g.degrees.max() / g.degrees.min() < 3

    def test_k_validated(self):
        with pytest.raises(GraphValidationError):
            cone_graph(0)


class TestApexGrid:
    def test_size(self):
        from repro.graphs.generators import apex_grid

        g = apex_grid(4, 4)
        assert g.n == 17
        # apex connects to all 12 boundary cells
        assert g.degrees[16] == 12

    def test_planar_edge_bound(self):
        from repro.graphs.generators import apex_grid

        g = apex_grid(8, 8)
        assert g.m <= 3 * g.n - 6

    def test_low_arboricity_high_degree(self):
        from repro.graphs.generators import apex_grid
        from repro.graphs.properties import degeneracy

        g = apex_grid(10, 10)
        assert g.max_degree >= 30
        assert degeneracy(g) <= 3
