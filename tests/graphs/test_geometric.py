"""Unit tests for the geometric WAP models and MST pipeline."""

import numpy as np
import pytest

from repro.graphs import GraphValidationError
from repro.graphs.geometric import (
    PointCloud,
    campus_model,
    city_model,
    euclidean_mst,
    threshold_graph,
    wap_tree,
)


class TestPointClouds:
    def test_campus_default_size_matches_paper(self):
        assert campus_model(seed=0).n == 178

    def test_city_scalable(self):
        assert city_model(n=500, seed=0).n == 500

    def test_deterministic_given_seed(self):
        a = campus_model(seed=3).points
        b = campus_model(seed=3).points
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = campus_model(seed=3).points
        b = campus_model(seed=4).points
        assert not np.array_equal(a, b)

    def test_colocation_produces_duplicates(self):
        cloud = campus_model(seed=1, colocation=0.6)
        uniq = np.unique(cloud.points, axis=0)
        assert len(uniq) < cloud.n  # co-located APs share coordinates

    def test_zero_colocation_all_distinct(self):
        cloud = campus_model(seed=1, colocation=0.0)
        uniq = np.unique(cloud.points, axis=0)
        assert len(uniq) == cloud.n

    def test_validation(self):
        with pytest.raises(GraphValidationError):
            campus_model(n=0)
        with pytest.raises(GraphValidationError):
            city_model(n=10, blocks=0)


class TestThresholdGraph:
    def test_connects_close_pairs_only(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        cloud = PointCloud("t", pts)
        g = threshold_graph(cloud, max_distance=1.5)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 2)

    def test_distance_validated(self):
        cloud = PointCloud("t", np.zeros((3, 2)))
        with pytest.raises(GraphValidationError):
            threshold_graph(cloud, max_distance=0.0)

    def test_coincident_points_connected(self):
        pts = np.zeros((4, 2))
        g = threshold_graph(PointCloud("t", pts), max_distance=1.0)
        assert g.m == 6  # complete graph on coincident points


class TestMST:
    def test_mst_of_connected_graph_is_tree(self):
        cloud = campus_model(seed=2)
        g = threshold_graph(cloud, max_distance=500.0)
        mst = euclidean_mst(cloud, g)
        assert mst.is_tree()

    def test_mst_picks_short_edges(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        cloud = PointCloud("t", pts)
        g = threshold_graph(cloud, max_distance=3.0)  # includes (0,2)
        mst = euclidean_mst(cloud, g)
        assert mst.has_edge(0, 1) and mst.has_edge(1, 2)
        assert not mst.has_edge(0, 2)

    def test_disconnected_keeps_largest_component(self):
        pts = np.array(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [100.0, 0.0], [101.0, 0.0]]
        )
        cloud = PointCloud("t", pts)
        g = threshold_graph(cloud, max_distance=2.5)
        mst = euclidean_mst(cloud, g)
        assert mst.n == 3 and mst.is_tree()


class TestWapTree:
    def test_auto_tuned_campus_tree(self):
        g = wap_tree(campus_model(seed=11))
        assert g.is_tree()
        assert g.n >= int(0.99 * 178)

    def test_explicit_threshold(self):
        g = wap_tree(campus_model(seed=11), max_distance=800.0)
        assert g.is_tree()

    def test_city_tree_has_hubs(self):
        # co-location must produce high-degree MST hubs — the structural
        # property behind the paper's 168x Luby inequality
        g = wap_tree(city_model(n=1200, seed=12))
        assert g.max_degree >= 15

    def test_campus_tree_has_hubs(self):
        g = wap_tree(campus_model(seed=11))
        assert g.max_degree >= 8
