"""Unit tests for the canonical StaticGraph type."""

import numpy as np
import pytest

from repro.graphs import GraphValidationError, StaticGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


class TestConstruction:
    def test_from_edges_canonicalizes_direction(self):
        g = StaticGraph.from_edges(3, [(2, 0), (1, 2)])
        assert g.edges.tolist() == [[0, 2], [1, 2]]

    def test_rejects_self_loops(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, [(1, 1)])

    def test_rejects_duplicates(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, [(0, 3)])

    def test_rejects_negative_vertex(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, [(-1, 0)])

    def test_rejects_negative_n(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(-1, [])

    def test_empty_graph(self):
        g = StaticGraph.from_edges(0, [])
        assert g.n == 0 and g.m == 0

    def test_from_networkx_roundtrip(self):
        import networkx as nx

        nxg = nx.petersen_graph()
        g = StaticGraph.from_networkx(nxg)
        assert g.n == 10 and g.m == 15
        back = g.to_networkx()
        assert nx.is_isomorphic(nxg, back)

    def test_from_networkx_arbitrary_labels(self):
        import networkx as nx

        nxg = nx.Graph([("a", "b"), ("b", "c")])
        g = StaticGraph.from_networkx(nxg)
        assert g.n == 3 and g.m == 2


class TestAccessors:
    def test_degrees_path(self):
        g = path_graph(5)
        assert g.degrees.tolist() == [1, 2, 2, 2, 1]

    def test_degrees_star(self):
        g = star_graph(6)
        assert g.degrees.tolist() == [5, 1, 1, 1, 1, 1]

    def test_max_degree(self):
        assert star_graph(9).max_degree == 8
        assert StaticGraph.from_edges(3, []).max_degree == 0

    def test_neighbors_sorted_content(self):
        g = star_graph(5)
        assert sorted(int(x) for x in g.neighbors(0)) == [1, 2, 3, 4]
        assert [int(x) for x in g.neighbors(3)] == [0]

    def test_neighbors_view_read_only(self):
        g = path_graph(4)
        view = g.neighbors(1)
        with pytest.raises(ValueError):
            view[0] = 99

    def test_has_edge(self):
        g = cycle_graph(5)
        assert g.has_edge(0, 1)
        assert g.has_edge(4, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(2, 2)

    def test_symmetrized_edge_arrays(self):
        g = path_graph(3)
        assert len(g.edge_src) == 2 * g.m
        pairs = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_len_and_iter(self):
        g = path_graph(4)
        assert len(g) == 4
        assert list(g) == [0, 1, 2, 3]

    def test_eq_and_hash(self):
        a = path_graph(4)
        b = path_graph(4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != path_graph(5)


class TestStructure:
    def test_connected_components_path(self):
        count, labels = path_graph(5).connected_components()
        assert count == 1
        assert len(set(labels.tolist())) == 1

    def test_connected_components_disjoint(self):
        g = StaticGraph.from_edges(5, [(0, 1), (2, 3)])
        count, labels = g.connected_components()
        assert count == 3  # {0,1}, {2,3}, {4}

    def test_is_tree(self):
        assert path_graph(6).is_tree()
        assert not cycle_graph(6).is_tree()
        assert not StaticGraph.from_edges(4, [(0, 1), (2, 3)]).is_tree()

    def test_is_forest(self):
        assert StaticGraph.from_edges(4, [(0, 1), (2, 3)]).is_forest()
        assert not cycle_graph(4).is_forest()

    def test_subgraph_mask_keeps_indices(self):
        g = path_graph(5)
        keep = np.array([True, True, False, True, True])
        sub = g.subgraph_mask(keep)
        assert sub.n == 5  # indices preserved
        assert sub.m == 2  # (0,1) and (3,4) survive

    def test_subgraph_mask_shape_check(self):
        with pytest.raises(GraphValidationError):
            path_graph(5).subgraph_mask(np.array([True, False]))

    def test_bfs_levels_single_source(self):
        levels = path_graph(5).bfs_levels([0])
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_bfs_levels_multi_source(self):
        levels = path_graph(5).bfs_levels([0, 4])
        assert levels.tolist() == [0, 1, 2, 1, 0]

    def test_bfs_levels_unreachable(self):
        g = StaticGraph.from_edges(4, [(0, 1)])
        levels = g.bfs_levels([0])
        assert levels[2] == -1 and levels[3] == -1

    def test_bfs_order_covers_component(self):
        order = grid_graph(3, 3).bfs_order(0)
        assert sorted(order.tolist()) == list(range(9))

    def test_diameter_path(self):
        assert path_graph(7).diameter() == 6

    def test_diameter_cycle(self):
        assert cycle_graph(6).diameter() == 3

    def test_diameter_singleton(self):
        assert StaticGraph.from_edges(1, []).diameter() == 0

    def test_diameter_disconnected_raises(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, [(0, 1)]).diameter()

    def test_diameter_empty_raises(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(0, []).diameter()


class TestBipartition:
    def test_path_is_bipartite(self):
        colors = path_graph(5).bipartition()
        assert colors is not None
        assert colors.tolist() == [0, 1, 0, 1, 0]

    def test_even_cycle_bipartite(self):
        assert cycle_graph(6).is_bipartite()

    def test_odd_cycle_not_bipartite(self):
        assert cycle_graph(5).bipartition() is None
        assert not cycle_graph(5).is_bipartite()

    def test_clique_not_bipartite(self):
        assert not complete_graph(4).is_bipartite()

    def test_grid_bipartite(self):
        colors = grid_graph(4, 5).bipartition()
        g = grid_graph(4, 5)
        assert colors is not None
        assert not np.any(colors[g.edge_src] == colors[g.edge_dst])

    def test_disconnected_bipartition(self):
        g = StaticGraph.from_edges(4, [(0, 1), (2, 3)])
        colors = g.bipartition()
        assert colors is not None
        assert colors[0] != colors[1] and colors[2] != colors[3]

    def test_isolated_vertices_colored(self):
        g = StaticGraph.from_edges(3, [])
        colors = g.bipartition()
        assert colors is not None and len(colors) == 3


class TestContentHash:
    def test_stable_across_calls(self):
        g = path_graph(6)
        assert g.content_hash() == g.content_hash()

    def test_equal_graphs_equal_hash(self):
        a = StaticGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        b = StaticGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert a.content_hash() == b.content_hash()

    def test_edge_input_order_invariant(self):
        a = StaticGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        b = StaticGraph.from_edges(4, [(2, 3), (1, 2), (0, 1)])
        c = StaticGraph.from_edges(4, [(3, 2), (1, 0), (2, 1)])
        assert a.content_hash() == b.content_hash() == c.content_hash()

    def test_isomorphic_relabeling_differs(self):
        # content_hash is a labeled-graph identity, not an isomorphism
        # invariant: relabeling the star center must change the digest.
        a = StaticGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        b = StaticGraph.from_edges(4, [(1, 0), (1, 2), (1, 3)])
        assert a.content_hash() != b.content_hash()

    def test_isolated_vertices_matter(self):
        a = StaticGraph.from_edges(3, [(0, 1)])
        b = StaticGraph.from_edges(4, [(0, 1)])
        assert a.content_hash() != b.content_hash()

    def test_empty_vs_nonempty(self):
        assert (
            StaticGraph.from_edges(0, []).content_hash()
            != StaticGraph.from_edges(1, []).content_hash()
        )

    def test_hex_digest_shape(self):
        h = path_graph(3).content_hash()
        assert len(h) == 64 and int(h, 16) >= 0


class TestFromArrays:
    def test_matches_from_edges(self):
        src = np.array([3, 0, 1], dtype=np.int64)
        dst = np.array([1, 2, 2], dtype=np.int64)
        a = StaticGraph.from_arrays(4, src, dst)
        b = StaticGraph.from_edges(4, [(3, 1), (0, 2), (1, 2)])
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_canonicalizes_direction_and_order(self):
        g = StaticGraph.from_arrays(
            4, np.array([3, 2, 1]), np.array([0, 0, 0])
        )
        assert g.edges.tolist() == [[0, 1], [0, 2], [0, 3]]

    def test_dedup_drops_parallel_and_reversed(self):
        g = StaticGraph.from_arrays(
            3, np.array([0, 1, 0, 0]), np.array([1, 0, 1, 2]), dedup=True
        )
        assert g.edges.tolist() == [[0, 1], [0, 2]]

    def test_duplicates_rejected_without_dedup(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_arrays(3, np.array([0, 1]), np.array([1, 0]))

    def test_rejects_self_loops(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_arrays(3, np.array([1]), np.array([1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_arrays(3, np.array([0]), np.array([3]))
        with pytest.raises(GraphValidationError):
            StaticGraph.from_arrays(3, np.array([-1]), np.array([0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_arrays(3, np.array([0, 1]), np.array([1]))
        with pytest.raises(GraphValidationError):
            StaticGraph.from_arrays(
                3, np.array([[0, 1]]), np.array([[1, 2]])
            )

    def test_empty_arrays(self):
        g = StaticGraph.from_arrays(
            3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert g.n == 3 and g.m == 0

    def test_accepts_narrow_dtypes(self):
        g = StaticGraph.from_arrays(
            300, np.array([0, 1], dtype=np.int16), np.array([2, 299], np.int16)
        )
        assert g.edges.dtype == np.int64
        assert g.edges.tolist() == [[0, 2], [1, 299]]

    def test_huge_n_lexsort_fallback(self):
        # n beyond int32 forces the lexsort branch (fused key would
        # overflow); content must match the fused-key result modulo n.
        n = np.iinfo(np.int32).max + 10
        g = StaticGraph.from_arrays(
            n, np.array([n - 1, 5, 5]), np.array([0, 9, 7])
        )
        assert g.edges.tolist() == [[0, n - 1], [5, 7], [5, 9]]


class TestZeroCopyNormalization:
    def test_canonical_array_returned_as_is(self):
        arr = np.array([[0, 1], [0, 2], [1, 3]], dtype=np.int64)
        g = StaticGraph.from_edges(4, arr)
        assert np.shares_memory(g.edges, arr)

    def test_non_canonical_array_copied(self):
        arr = np.array([[2, 0], [1, 3]], dtype=np.int64)
        g = StaticGraph.from_edges(4, arr)
        assert not np.shares_memory(g.edges, arr)
        assert g.edges.tolist() == [[0, 2], [1, 3]]

    def test_ndarray_list_round_trip(self):
        # regression: ndarray input must not round-trip through
        # list(...) — and must parse element rows correctly.
        arr = np.array([[3, 1], [0, 2]], dtype=np.int32)
        g = StaticGraph.from_edges(4, arr)
        assert g.edges.tolist() == [[0, 2], [1, 3]]
        assert g == StaticGraph.from_edges(4, [(3, 1), (0, 2)])

    def test_non_integral_array_rejected(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, np.array([[0.5, 1.0]]))

    def test_malformed_shape_rejected(self):
        with pytest.raises(GraphValidationError):
            StaticGraph.from_edges(3, np.array([0, 1, 2]))


class TestCSRConstruction:
    @staticmethod
    def _naive_csr(g):
        """Stable argsort of the symmetrized edge list — the reference
        order the merge-trick construction must reproduce exactly."""
        src = np.concatenate([g.edges[:, 0], g.edges[:, 1]])
        dst = np.concatenate([g.edges[:, 1], g.edges[:, 0]])
        order = np.argsort(src, kind="stable")
        indptr = np.zeros(g.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=g.n), out=indptr[1:])
        return indptr, dst[order]

    @pytest.mark.parametrize(
        "g",
        [
            path_graph(17),
            cycle_graph(12),
            star_graph(9),
            complete_graph(8),
            grid_graph(5, 7),
            StaticGraph.from_edges(6, [(0, 5), (0, 3), (2, 4)]),
            StaticGraph.from_edges(4, []),
        ],
        ids=["path", "cycle", "star", "complete", "grid", "sparse", "empty"],
    )
    def test_matches_naive_stable_argsort(self, g):
        indptr, indices = g._csr
        ref_ptr, ref_idx = self._naive_csr(g)
        assert np.array_equal(indptr, ref_ptr)
        assert np.array_equal(indices, ref_idx)

    def test_random_graphs_match(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(2, 40))
            k = int(rng.integers(0, 3 * n))
            src = rng.integers(0, n, size=k)
            dst = rng.integers(0, n, size=k)
            keep = src != dst
            g = StaticGraph.from_arrays(n, src[keep], dst[keep], dedup=True)
            indptr, indices = g._csr
            ref_ptr, ref_idx = self._naive_csr(g)
            assert np.array_equal(indptr, ref_ptr)
            assert np.array_equal(indices, ref_idx)
