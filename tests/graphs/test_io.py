"""Tests for graph / point-cloud / estimate persistence."""

import numpy as np
import pytest

from repro.analysis import JoinEstimate
from repro.graphs import (
    campus_model,
    load_estimate,
    load_graph,
    load_point_cloud,
    random_tree,
    save_estimate,
    save_graph,
    save_point_cloud,
)
from repro.graphs.generators import cone_graph, empty_graph


class TestGraphRoundtrip:
    def test_tree(self, tmp_path):
        g = random_tree(40, seed=1).graph
        p = tmp_path / "g.npz"
        save_graph(p, g)
        assert load_graph(p) == g

    def test_dense(self, tmp_path):
        g = cone_graph(5)
        p = tmp_path / "g.npz"
        save_graph(p, g)
        loaded = load_graph(p)
        assert loaded.n == g.n and loaded.m == g.m

    def test_edgeless(self, tmp_path):
        p = tmp_path / "g.npz"
        save_graph(p, empty_graph(3))
        assert load_graph(p).n == 3

    def test_wrong_kind_rejected(self, tmp_path):
        p = tmp_path / "c.npz"
        save_point_cloud(p, campus_model(n=10, seed=0))
        with pytest.raises(ValueError):
            load_graph(p)


class TestPointCloudRoundtrip:
    def test_roundtrip(self, tmp_path):
        cloud = campus_model(n=25, seed=3)
        p = tmp_path / "c.npz"
        save_point_cloud(p, cloud)
        loaded = load_point_cloud(p)
        assert loaded.label == cloud.label
        assert np.array_equal(loaded.points, cloud.points)

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.graphs.generators import path_graph

        p = tmp_path / "g.npz"
        save_graph(p, path_graph(3))
        with pytest.raises(ValueError):
            load_point_cloud(p)


class TestEstimateRoundtrip:
    def test_roundtrip(self, tmp_path):
        est = JoinEstimate(counts=np.array([3, 7, 5]), trials=10)
        p = tmp_path / "e.npz"
        save_estimate(p, est)
        loaded = load_estimate(p)
        assert loaded.trials == 10
        assert np.array_equal(loaded.counts, est.counts)

    def test_merge_after_load(self, tmp_path):
        a = JoinEstimate(counts=np.array([3, 7]), trials=10)
        p = tmp_path / "e.npz"
        save_estimate(p, a)
        merged = load_estimate(p).merge(a)
        assert merged.trials == 20
