"""Unit tests for structural graph properties."""

import numpy as np
import pytest

from repro.graphs import GraphValidationError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
    triangulated_grid,
)
from repro.graphs.properties import (
    arboricity_upper_bound,
    degeneracy,
    degeneracy_ordering,
    degree_histogram,
    eccentricities,
    leaf_fraction,
    parity_classes,
)


class TestDegeneracy:
    def test_tree_degeneracy_one(self):
        assert degeneracy(random_tree(30, seed=1).graph) == 1

    def test_cycle_degeneracy_two(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_clique_degeneracy(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_grid_degeneracy_two(self):
        assert degeneracy(grid_graph(5, 5)) == 2

    def test_triangulated_grid_degeneracy_three(self):
        assert degeneracy(triangulated_grid(6, 6)) == 3

    def test_empty(self):
        from repro.graphs.generators import empty_graph

        assert degeneracy(empty_graph(5)) == 0

    def test_ordering_is_permutation(self):
        g = grid_graph(4, 4)
        _, order = degeneracy_ordering(g)
        assert sorted(order.tolist()) == list(range(16))

    def test_ordering_respects_degeneracy(self):
        # replaying the smallest-last order, each vertex has at most
        # `degeneracy` later neighbors
        g = triangulated_grid(4, 4)
        d, order = degeneracy_ordering(g)
        pos = np.empty(g.n, dtype=int)
        pos[order] = np.arange(g.n)
        for v in range(g.n):
            later = sum(1 for w in g.neighbors(v) if pos[w] > pos[v])
            assert later <= d


class TestArboricity:
    def test_forest_arboricity_one(self):
        assert arboricity_upper_bound(random_tree(20, seed=0).graph) == 1

    def test_planar_bounded(self):
        assert arboricity_upper_bound(triangulated_grid(6, 6)) <= 5

    def test_edgeless(self):
        from repro.graphs.generators import empty_graph

        assert arboricity_upper_bound(empty_graph(4)) == 0


class TestParityClasses:
    def test_path_parity(self):
        assert parity_classes(path_graph(4)).tolist() == [0, 1, 0, 1]

    def test_grid_proper(self):
        g = grid_graph(4, 4)
        par = parity_classes(g)
        assert not np.any(par[g.edge_src] == par[g.edge_dst])

    def test_non_bipartite_raises(self):
        with pytest.raises(GraphValidationError):
            parity_classes(cycle_graph(5))


class TestMisc:
    def test_eccentricities_path(self):
        ecc = eccentricities(path_graph(5))
        assert ecc.tolist() == [4, 3, 2, 3, 4]

    def test_degree_histogram_star(self):
        hist = degree_histogram(star_graph(5))
        assert hist[1] == 4 and hist[4] == 1

    def test_leaf_fraction_star(self):
        assert leaf_fraction(star_graph(5)) == pytest.approx(0.8)

    def test_leaf_fraction_empty(self):
        from repro.graphs.generators import empty_graph

        assert leaf_fraction(empty_graph(0)) == 0.0
