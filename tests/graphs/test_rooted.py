"""Unit tests for RootedTree."""

import numpy as np
import pytest

from repro.graphs import GraphValidationError, RootedTree, StaticGraph
from repro.graphs.generators import complete_tree, path_graph, random_tree


class TestConstruction:
    def test_from_graph_roots_at_given_vertex(self):
        t = RootedTree.from_graph(path_graph(5), root=2)
        assert t.parent[2] == -1
        assert sorted(t.roots.tolist()) == [2]

    def test_from_graph_forest_multiple_roots(self):
        g = StaticGraph.from_edges(5, [(0, 1), (2, 3)])
        t = RootedTree.from_graph(g)
        assert len(t.roots) == 3  # components {0,1}, {2,3}, {4}

    def test_parent_shape_validated(self):
        with pytest.raises(GraphValidationError):
            RootedTree(graph=path_graph(3), parent=np.array([-1, 0]))

    def test_cyclic_graph_rejected(self):
        from repro.graphs.generators import cycle_graph

        with pytest.raises(GraphValidationError):
            RootedTree(graph=cycle_graph(4), parent=np.array([-1, 0, 1, 2]))

    def test_consistently_oriented_cycle_rejected(self):
        # Every edge is oriented by the parent array and every parent is
        # adjacent, yet there is no root: only the acyclicity check
        # (pointer doubling) can catch this one.
        from repro.graphs.generators import cycle_graph

        with pytest.raises(GraphValidationError, match="acyclic"):
            RootedTree(graph=cycle_graph(3), parent=np.array([1, 2, 0]))

    def test_two_cycles_rejected(self):
        g = StaticGraph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        with pytest.raises(GraphValidationError, match="acyclic"):
            RootedTree(graph=g, parent=np.array([1, 2, 0, 4, 5, 3]))

    def test_parent_out_of_range_rejected(self):
        with pytest.raises(GraphValidationError):
            RootedTree(graph=path_graph(3), parent=np.array([-1, 0, 5]))

    def test_parent_must_be_adjacent(self):
        with pytest.raises(GraphValidationError):
            RootedTree(graph=path_graph(3), parent=np.array([-1, 0, 0]))

    def test_every_edge_oriented(self):
        # parent array that ignores edge (1,2)
        g = path_graph(3)
        with pytest.raises(GraphValidationError):
            RootedTree(graph=g, parent=np.array([-1, 0, -1]))


class TestAccessors:
    def test_depth_path(self):
        t = RootedTree.from_graph(path_graph(4), root=0)
        assert t.depth.tolist() == [0, 1, 2, 3]

    def test_children(self):
        t = complete_tree(2, 2)
        kids = sorted(int(x) for x in t.children(0))
        assert kids == [1, 2]

    def test_leaf_has_no_children(self):
        t = complete_tree(2, 2)
        assert t.children(t.n - 1).size == 0

    def test_n_matches_graph(self):
        t = random_tree(17, seed=0)
        assert t.n == 17

    def test_complete_tree_parents_consistent(self):
        t = complete_tree(3, 3)
        for v in range(1, t.n):
            p = int(t.parent[v])
            assert p >= 0
            assert v in [int(c) for c in t.children(p)]

    def test_random_tree_is_tree(self):
        for seed in range(5):
            t = random_tree(30, seed=seed)
            assert t.graph.is_tree()
            assert (t.parent < 0).sum() == 1
