"""Shared-memory graph transport: handles, attach cache, cleanup."""

import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.graphs import (
    GraphShmHandle,
    attach_graph,
    detach_all,
    detach_graph,
    export_graph,
    random_tree,
    shm_enabled,
)
from repro.graphs.shm import _ATTACHED


@pytest.fixture(autouse=True)
def _clean_attachments():
    yield
    detach_all()


def _tree(n=40, seed=3):
    return random_tree(n, seed).graph


def _segment_gone(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


class TestExportAttach:
    def test_round_trip_equality(self):
        g = _tree()
        shared = export_graph(g)
        try:
            g2 = attach_graph(shared.handle)
            assert g2.n == g.n
            assert np.array_equal(g2.edges, g.edges)
            assert g2.content_hash() == g.content_hash()
            # Behavior parity through the CSR path.
            for v in (0, g.n // 2, g.n - 1):
                assert np.array_equal(g2.neighbors(v), g.neighbors(v))
        finally:
            detach_all()
            shared.close()

    def test_attach_injects_csr_and_hash(self):
        g = _tree()
        shared = export_graph(g)
        try:
            g2 = attach_graph(shared.handle)
            # Nothing should be recomputed on the worker side.
            assert "_csr" in g2.__dict__
            assert "_content_hash" in g2.__dict__
        finally:
            detach_all()
            shared.close()

    def test_attached_views_are_read_only(self):
        g = _tree()
        shared = export_graph(g)
        try:
            g2 = attach_graph(shared.handle)
            with pytest.raises(ValueError):
                g2.edges[0, 0] = 99
        finally:
            detach_all()
            shared.close()

    def test_attach_cache_returns_identical_object(self):
        g = _tree()
        shared = export_graph(g)
        try:
            first = attach_graph(shared.handle)
            assert attach_graph(shared.handle) is first
            assert detach_graph(shared.handle.content_hash)
            assert not detach_graph(shared.handle.content_hash)
            assert shared.handle.content_hash not in _ATTACHED
        finally:
            detach_all()
            shared.close()

    def test_empty_edge_graph(self):
        from repro.graphs import empty_graph

        g = empty_graph(5)
        shared = export_graph(g)
        try:
            g2 = attach_graph(shared.handle)
            assert g2.n == 5 and g2.m == 0
        finally:
            detach_all()
            shared.close()


class TestHandle:
    def test_handle_pickles_small_and_size_independent(self):
        small = export_graph(_tree(20))
        big = export_graph(_tree(2000))
        try:
            p_small = len(pickle.dumps(small.handle))
            p_big = len(pickle.dumps(big.handle))
            # O(1) in graph size: a 100x bigger graph must not grow the
            # handle (names vary by a couple of bytes).
            assert abs(p_big - p_small) < 64
            assert p_big < len(pickle.dumps(big.graph)) / 10
        finally:
            small.close()
            big.close()

    def test_handle_round_trips_through_pickle(self):
        shared = export_graph(_tree())
        try:
            clone = pickle.loads(pickle.dumps(shared.handle))
            assert isinstance(clone, GraphShmHandle)
            assert clone == shared.handle
            assert clone.nbytes_shared == shared.handle.nbytes_shared
        finally:
            shared.close()


class TestCleanup:
    def test_close_unlinks_all_segments(self):
        shared = export_graph(_tree())
        names = [
            shared.handle.edges.name,
            shared.handle.indptr.name,
            shared.handle.indices.name,
        ]
        shared.close()
        assert shared.closed
        for name in names:
            assert _segment_gone(name)

    def test_close_is_idempotent(self):
        shared = export_graph(_tree())
        shared.close()
        shared.close()

    def test_context_manager_closes(self):
        with export_graph(_tree()) as shared:
            name = shared.handle.edges.name
        assert _segment_gone(name)

    def test_unlink_with_live_attachment_keeps_mapping_valid(self):
        g = _tree()
        shared = export_graph(g)
        g2 = attach_graph(shared.handle)
        shared.close()  # POSIX: name gone, mapping survives
        assert np.array_equal(g2.edges, g.edges)
        detach_all()


class TestEnvGate:
    def test_shm_enabled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF"])
    def test_shm_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SHM", value)
        assert not shm_enabled()

    def test_shm_enabled_other_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_enabled()
