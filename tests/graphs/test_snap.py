"""Streaming SNAP-style edge-list loader: parsing, compaction, errors."""

import gzip

import numpy as np
import pytest

from repro.graphs import GraphValidationError, load_snap_edgelist
from repro.graphs.generators import random_tree


def _write(tmp_path, text, name="edges.txt"):
    p = tmp_path / name
    p.write_text(text, encoding="utf-8")
    return p


class TestParsing:
    def test_basic(self, tmp_path):
        p = _write(tmp_path, "0 1\n1 2\n2 3\n")
        result = load_snap_edgelist(p)
        assert result.n == 4 and result.m == 3
        assert result.graph.edges.tolist() == [[0, 1], [1, 2], [2, 3]]

    def test_comments_skipped(self, tmp_path):
        p = _write(
            tmp_path,
            "# SNAP header\n# Nodes: 3 Edges: 2\n0 1\n  # indented comment\n1 2\n",
        )
        result = load_snap_edgelist(p)
        assert result.m == 2

    def test_tabs_and_mixed_whitespace(self, tmp_path):
        p = _write(tmp_path, "0\t1\n1   2\n\n2\t 3\n")
        assert load_snap_edgelist(p).m == 3

    def test_no_trailing_newline(self, tmp_path):
        p = _write(tmp_path, "0 1\n1 2")
        assert load_snap_edgelist(p).m == 2

    def test_chunk_boundaries(self, tmp_path):
        # tiny chunks force carries mid-line and mid-token
        text = "# c\n" + "\n".join(f"{i} {i + 1}" for i in range(50)) + "\n"
        p = _write(tmp_path, text)
        whole = load_snap_edgelist(p)
        for chunk_bytes in (1, 2, 3, 7, 16):
            part = load_snap_edgelist(p, chunk_bytes=chunk_bytes)
            assert part.graph == whole.graph

    def test_gzip(self, tmp_path):
        p = tmp_path / "edges.txt.gz"
        with gzip.open(p, "wb") as fh:
            fh.write(b"# z\n0 1\n1 2\n")
        assert load_snap_edgelist(p).m == 2

    def test_empty_file(self, tmp_path):
        p = _write(tmp_path, "")
        result = load_snap_edgelist(p)
        assert result.n == 0 and result.m == 0

    def test_comments_only(self, tmp_path):
        p = _write(tmp_path, "# nothing\n# here\n")
        assert load_snap_edgelist(p).n == 0


class TestCleanup:
    def test_both_directions_deduplicated(self, tmp_path):
        p = _write(tmp_path, "0 1\n1 0\n1 2\n2 1\n")
        result = load_snap_edgelist(p)
        assert result.m == 2

    def test_repeated_rows_deduplicated(self, tmp_path):
        p = _write(tmp_path, "0 1\n0 1\n0 1\n")
        assert load_snap_edgelist(p).m == 1

    def test_self_loops_dropped_and_counted(self, tmp_path):
        p = _write(tmp_path, "0 0\n0 1\n1 1\n")
        result = load_snap_edgelist(p)
        assert result.m == 1
        assert result.self_loops_dropped == 2

    def test_round_trip_matches_generator(self, tmp_path):
        g = random_tree(40, seed=9).graph
        lines = []
        for u, v in g.edges.tolist():
            lines.append(f"{u} {v}")
            lines.append(f"{v} {u}")  # SNAP files list both directions
        p = _write(tmp_path, "\n".join(lines) + "\n")
        result = load_snap_edgelist(p)
        assert result.graph.content_hash() == g.content_hash()


class TestCompaction:
    def test_sparse_ids_remapped(self, tmp_path):
        p = _write(tmp_path, "10 40\n40 20\n20 30\n")
        result = load_snap_edgelist(p)
        assert result.n == 4
        assert result.node_ids is not None
        assert result.node_ids.tolist() == [10, 20, 30, 40]
        # edge {10,40} maps to {0,3} under the sorted-id remapping
        assert result.graph.edges.tolist() == [[0, 3], [1, 2], [1, 3]]

    def test_compaction_disabled(self, tmp_path):
        p = _write(tmp_path, "0 5\n5 3\n")
        result = load_snap_edgelist(p, compact_ids=False)
        assert result.n == 6
        assert result.node_ids is None

    def test_negative_ids_require_compaction(self, tmp_path):
        p = _write(tmp_path, "-3 1\n")
        assert load_snap_edgelist(p).n == 2
        with pytest.raises(GraphValidationError, match="negative"):
            load_snap_edgelist(p, compact_ids=False)


class TestErrors:
    def test_odd_token_count(self, tmp_path):
        p = _write(tmp_path, "0 1\n2\n")
        with pytest.raises(GraphValidationError, match="odd token"):
            load_snap_edgelist(p)

    def test_non_integer_token(self, tmp_path):
        p = _write(tmp_path, "0 1\na b\n")
        with pytest.raises(GraphValidationError, match="non-integer"):
            load_snap_edgelist(p)

    def test_bad_chunk_bytes(self, tmp_path):
        p = _write(tmp_path, "0 1\n")
        with pytest.raises(GraphValidationError):
            load_snap_edgelist(p, chunk_bytes=0)


class TestResultAccessors:
    def test_n_m_properties(self, tmp_path):
        p = _write(tmp_path, "0 1\n1 2\n")
        result = load_snap_edgelist(p)
        assert result.n == result.graph.n == 3
        assert result.m == result.graph.m == 2
