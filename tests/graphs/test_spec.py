"""Tests for the public GraphSpec parse/build API."""

import pytest

from repro.graphs.spec import KINDS, GraphSpec, GraphSpecError, build_graph


class TestParse:
    def test_parse_splits_kind_and_args(self):
        spec = GraphSpec.parse("tree:20:5")
        assert spec.kind == "tree"
        assert spec.args == ("20", "5")

    def test_parse_no_args(self):
        assert GraphSpec.parse("campus").args == ()

    def test_canonical_round_trips(self):
        for text in ("tree:20:5", "grid:3x4", "campus", "city:300:1"):
            assert GraphSpec.parse(text).canonical == text

    def test_unknown_kind_raises(self):
        with pytest.raises(GraphSpecError):
            GraphSpec.parse("donut:5")

    def test_error_is_value_error(self):
        # Library callers can catch plain ValueError.
        with pytest.raises(ValueError):
            GraphSpec.parse("donut:5")

    def test_all_kinds_listed(self):
        assert "tree" in KINDS and "city" in KINDS


class TestBuild:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("path:7", 7),
            ("star:9", 9),
            ("cycle:5", 5),
            ("binary:3", 15),
            ("kary:3,2", 13),
            ("alt:4,2", 9),
            ("grid:3x4", 12),
            ("trigrid:3x3", 9),
            ("apex:3x3", 10),
            ("cone:3", 7),
            ("tree:20:5", 20),
        ],
    )
    def test_build_sizes(self, spec, n):
        assert build_graph(spec).n == n

    def test_campus_builds_tree(self):
        assert build_graph("campus:11").is_tree()

    def test_malformed_args_raise(self):
        with pytest.raises(GraphSpecError):
            build_graph("path:notanumber")

    def test_missing_args_raise(self):
        with pytest.raises(GraphSpecError):
            build_graph("path")

    def test_build_deterministic(self):
        a = build_graph("tree:30:7")
        b = build_graph("tree:30:7")
        assert a == b
