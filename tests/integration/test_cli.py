"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.graphs import build_graph


class TestGraphSpecs:
    # Full parse/build coverage lives in tests/graphs/test_spec.py; here
    # we check the CLI-facing surface (spec strings reach the builder and
    # errors exit cleanly).
    def test_city_spec_scaled(self):
        g = build_graph("city:300:1")
        assert g.is_tree() and g.n >= 290

    def test_unknown_kind_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--graph", "donut:5"])

    def test_deprecated_shim_still_works(self):
        from repro.cli import parse_graph_spec

        with pytest.deprecated_call():
            g = parse_graph_spec("path:7")
        assert g.n == 7

    def test_deprecated_shim_keeps_systemexit(self):
        from repro.cli import parse_graph_spec

        with pytest.deprecated_call(), pytest.raises(SystemExit):
            parse_graph_spec("donut:5")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fair_tree_fast" in out and "luby" in out

    def test_run(self, capsys):
        assert main(["run", "--graph", "star:8", "--algorithm", "luby_fast"]) == 0
        out = capsys.readouterr().out
        assert "MIS size" in out

    def test_estimate(self, capsys):
        code = main(
            [
                "estimate",
                "--graph",
                "path:10",
                "--algorithm",
                "fair_tree_fast",
                "--trials",
                "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inequality" in out and "histogram" in out

    def test_star_command(self, capsys):
        assert main(["star", "--trials", "120"]) == 0
        assert "P(center)" in capsys.readouterr().out

    def test_cone_command(self, capsys):
        assert main(["cone", "--trials", "100"]) == 0
        assert "P(apex)" in capsys.readouterr().out

    def test_optimal_command(self, capsys):
        assert main(["optimal", "--trials", "80"]) == 0
        assert "F* (exact)" in capsys.readouterr().out

    def test_families_command(self, capsys):
        assert main(["families", "--trials", "60"]) == 0
        assert "guaranteed" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestBatchCommand:
    def _request_file(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_batch_streams_results(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [
                json.dumps(
                    {
                        "id": "r1",
                        "graph": "tree:40:3",
                        "algorithm": "luby_fast",
                        "trials": 64,
                        "seed": 0,
                    }
                ),
                "# comments and blank lines are skipped",
                "",
                json.dumps(
                    {
                        "id": "r2",
                        "graph": "tree:40:3",
                        "algorithm": "luby_fast",
                        "trials": 64,
                        "seed": 0,
                    }
                ),
            ],
        )
        assert main(["batch", "--input", reqs, "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        results = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in results] == ["r1", "r2"]
        assert results[0]["cached"] is False
        assert results[1]["cached"] is True  # identical request → cache hit
        assert results[1]["trials_run"] == 0
        assert results[0]["counts"] == results[1]["counts"]
        assert "cache hits" in captured.err

    def test_batch_output_file_and_no_counts(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [json.dumps({"graph": "path:10", "algorithm": "luby_fast", "trials": 32})],
        )
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--input", reqs, "--output", str(out), "--jobs", "1", "--no-counts"]
        )
        assert code == 0
        capsys.readouterr()  # discard stderr stats
        (result,) = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert result["graph"] == "path:10"
        assert "counts" not in result
        assert result["trials"] == 32

    def test_batch_reports_per_line_errors(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [
                "{not json",
                json.dumps({"graph": "donut:9"}),
                json.dumps({"graph": "path:6", "algorithm": "luby_fast", "trials": 8}),
            ],
        )
        with pytest.raises(SystemExit) as exc_info:
            main(["batch", "--input", reqs, "--jobs", "1"])
        assert exc_info.value.code == 1  # errors occurred, run completed
        results = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert "error" in results[0] and results[0]["line"] == 1
        assert "error" in results[1] and results[1]["line"] == 2
        assert "inequality" in results[2]

    def test_batch_mode_override(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [json.dumps({"graph": "path:10", "algorithm": "luby_fast", "trials": 32})],
        )
        assert main(["batch", "--input", reqs, "--jobs", "1", "--mode", "exact"]) == 0
        (result,) = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert result["mode"] == "exact"


class TestServeCommand:
    def test_serve_reads_stdin(self, capsys, monkeypatch):
        request = json.dumps(
            {"graph": "path:8", "algorithm": "luby_fast", "trials": 16, "seed": 1}
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        (result,) = [json.loads(line) for line in captured.out.splitlines()]
        assert result["trials"] == 16
        assert "ready" in captured.err

    def test_serve_stats_every_emits_snapshots(self, capsys, monkeypatch):
        request = json.dumps(
            {"graph": "path:8", "algorithm": "luby_fast", "trials": 16,
             "seed": 1, "mode": "exact"}
        )
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(request + "\n" + request + "\n")
        )
        assert main(["serve", "--jobs", "1", "--stats-every", "1"]) == 0
        captured = capsys.readouterr()
        stats = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith("{")
        ]
        assert [s["requests_served"] for s in stats] == [1, 2]
        assert stats[0]["counters"]["trials_executed"] == 16
        assert stats[1]["counters"]["cache_hits"] == 1
        # the full registry snapshot rides along
        assert "service_request_latency_seconds" in stats[0]["metrics"][
            "histograms"
        ]

    def test_serve_log_level_emits_structured_events(
        self, capsys, monkeypatch
    ):
        from repro.obs.logging import disable_logging

        request = json.dumps(
            {"graph": "path:8", "algorithm": "luby_fast", "trials": 8,
             "seed": 1}
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        try:
            assert main(["serve", "--jobs", "1", "--log-level", "info"]) == 0
        finally:
            disable_logging()
        err = capsys.readouterr().err
        events = [
            json.loads(line)
            for line in err.splitlines()
            if line.startswith("{") and '"event"' in line
        ]
        names = {e["event"] for e in events}
        assert "request_submitted" in names
        assert "request_completed" in names


class TestStatsCommand:
    def test_stats_both_formats(self, capsys):
        assert main(["stats", "--trials", "16"]) == 0
        out = capsys.readouterr().out
        # Prometheus text exposition: counters plus the three headline
        # histograms.
        # 2 exact requests + 2 precision requests probe both planes.
        assert "# TYPE service_requests_total counter" in out
        assert "service_requests_total 4" in out
        assert "service_request_latency_seconds_bucket" in out
        assert "service_trials_per_chunk_bucket" in out
        assert 'trial_rounds_bucket{algorithm="luby_fast"' in out
        # JSON snapshot follows and parses
        json_part = out[out.index('{\n  "counters"'):]
        doc = json.loads(json_part)
        assert doc["counters"]["trials_executed"] >= 16
        assert doc["counters"]["cache_hits"] == 1
        assert doc["counters"]["precision_requests"] == 2
        assert "trial_rounds" in doc["metrics"]["histograms"]

    def test_stats_json_only(self, capsys):
        assert main(["stats", "--trials", "8", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["requests"] == 4
        hists = doc["metrics"]["histograms"]
        assert "service_request_latency_seconds" in hists
        assert "service_trials_per_chunk" in hists
        assert "trial_rounds" in hists

    def test_stats_prom_only(self, capsys):
        assert main(["stats", "--trials", "8", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# HELP")
        assert "{" not in out.splitlines()[-2] or "le=" in out  # no JSON tail

    def test_stats_bad_graph_exits(self):
        with pytest.raises(SystemExit):
            main(["stats", "--graph", "donut:5"])
