"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_graph_spec


class TestGraphSpecs:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("path:7", 7),
            ("star:9", 9),
            ("cycle:5", 5),
            ("binary:3", 15),
            ("kary:3,2", 13),
            ("alt:4,2", 9),  # root(1) + 4 children + 4 single grandchildren
            ("grid:3x4", 12),
            ("trigrid:3x3", 9),
            ("apex:3x3", 10),
            ("cone:3", 7),
            ("tree:20:5", 20),
        ],
    )
    def test_spec_sizes(self, spec, n):
        assert parse_graph_spec(spec).n == n

    def test_campus_spec(self):
        g = parse_graph_spec("campus:11")
        assert g.is_tree()

    def test_city_spec_scaled(self):
        g = parse_graph_spec("city:300:1")
        assert g.is_tree() and g.n >= 290

    def test_unknown_kind(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("donut:5")

    def test_malformed_args(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("path:notanumber")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fair_tree_fast" in out and "luby" in out

    def test_run(self, capsys):
        assert main(["run", "--graph", "star:8", "--algorithm", "luby_fast"]) == 0
        out = capsys.readouterr().out
        assert "MIS size" in out

    def test_estimate(self, capsys):
        code = main(
            [
                "estimate",
                "--graph",
                "path:10",
                "--algorithm",
                "fair_tree_fast",
                "--trials",
                "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inequality" in out and "histogram" in out

    def test_star_command(self, capsys):
        assert main(["star", "--trials", "120"]) == 0
        assert "P(center)" in capsys.readouterr().out

    def test_cone_command(self, capsys):
        assert main(["cone", "--trials", "100"]) == 0
        assert "P(apex)" in capsys.readouterr().out

    def test_optimal_command(self, capsys):
        assert main(["optimal", "--trials", "80"]) == 0
        assert "F* (exact)" in capsys.readouterr().out

    def test_families_command(self, capsys):
        assert main(["families", "--trials", "60"]) == 0
        assert "guaranteed" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
