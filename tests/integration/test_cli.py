"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.graphs import build_graph


class TestGraphSpecs:
    # Full parse/build coverage lives in tests/graphs/test_spec.py; here
    # we check the CLI-facing surface (spec strings reach the builder and
    # errors exit cleanly).
    def test_city_spec_scaled(self):
        g = build_graph("city:300:1")
        assert g.is_tree() and g.n >= 290

    def test_unknown_kind_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--graph", "donut:5"])

    def test_deprecated_shim_still_works(self):
        from repro.cli import parse_graph_spec

        with pytest.deprecated_call():
            g = parse_graph_spec("path:7")
        assert g.n == 7

    def test_deprecated_shim_keeps_systemexit(self):
        from repro.cli import parse_graph_spec

        with pytest.deprecated_call(), pytest.raises(SystemExit):
            parse_graph_spec("donut:5")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fair_tree_fast" in out and "luby" in out

    def test_run(self, capsys):
        assert main(["run", "--graph", "star:8", "--algorithm", "luby_fast"]) == 0
        out = capsys.readouterr().out
        assert "MIS size" in out

    def test_estimate(self, capsys):
        code = main(
            [
                "estimate",
                "--graph",
                "path:10",
                "--algorithm",
                "fair_tree_fast",
                "--trials",
                "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inequality" in out and "histogram" in out

    def test_star_command(self, capsys):
        assert main(["star", "--trials", "120"]) == 0
        assert "P(center)" in capsys.readouterr().out

    def test_cone_command(self, capsys):
        assert main(["cone", "--trials", "100"]) == 0
        assert "P(apex)" in capsys.readouterr().out

    def test_optimal_command(self, capsys):
        assert main(["optimal", "--trials", "80"]) == 0
        assert "F* (exact)" in capsys.readouterr().out

    def test_families_command(self, capsys):
        assert main(["families", "--trials", "60"]) == 0
        assert "guaranteed" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestBatchCommand:
    def _request_file(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_batch_streams_results(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [
                json.dumps(
                    {
                        "id": "r1",
                        "graph": "tree:40:3",
                        "algorithm": "luby_fast",
                        "trials": 64,
                        "seed": 0,
                    }
                ),
                "# comments and blank lines are skipped",
                "",
                json.dumps(
                    {
                        "id": "r2",
                        "graph": "tree:40:3",
                        "algorithm": "luby_fast",
                        "trials": 64,
                        "seed": 0,
                    }
                ),
            ],
        )
        assert main(["batch", "--input", reqs, "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        results = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in results] == ["r1", "r2"]
        assert results[0]["cached"] is False
        assert results[1]["cached"] is True  # identical request → cache hit
        assert results[1]["trials_run"] == 0
        assert results[0]["counts"] == results[1]["counts"]
        assert "cache hits" in captured.err

    def test_batch_output_file_and_no_counts(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [json.dumps({"graph": "path:10", "algorithm": "luby_fast", "trials": 32})],
        )
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--input", reqs, "--output", str(out), "--jobs", "1", "--no-counts"]
        )
        assert code == 0
        capsys.readouterr()  # discard stderr stats
        (result,) = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert result["graph"] == "path:10"
        assert "counts" not in result
        assert result["trials"] == 32

    def test_batch_reports_per_line_errors(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [
                "{not json",
                json.dumps({"graph": "donut:9"}),
                json.dumps({"graph": "path:6", "algorithm": "luby_fast", "trials": 8}),
            ],
        )
        with pytest.raises(SystemExit) as exc_info:
            main(["batch", "--input", reqs, "--jobs", "1"])
        assert exc_info.value.code == 1  # errors occurred, run completed
        results = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert "error" in results[0] and results[0]["line"] == 1
        assert "error" in results[1] and results[1]["line"] == 2
        assert "inequality" in results[2]

    def test_batch_mode_override(self, tmp_path, capsys):
        reqs = self._request_file(
            tmp_path,
            [json.dumps({"graph": "path:10", "algorithm": "luby_fast", "trials": 32})],
        )
        assert main(["batch", "--input", reqs, "--jobs", "1", "--mode", "exact"]) == 0
        (result,) = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert result["mode"] == "exact"


class TestServeCommand:
    def test_serve_reads_stdin(self, capsys, monkeypatch):
        request = json.dumps(
            {"graph": "path:8", "algorithm": "luby_fast", "trials": 16, "seed": 1}
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        (result,) = [json.loads(line) for line in captured.out.splitlines()]
        assert result["trials"] == 16
        assert "ready" in captured.err
