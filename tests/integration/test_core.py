"""Tests for core contracts and registry edge cases."""

import numpy as np
import pytest

from repro.core.registry import AlgorithmNotFound, _REGISTRY, make, register
from repro.core.result import MISResult


class TestRegistryEdgeCases:
    def test_double_registration_rejected(self):
        @register("test_dummy_alg_xyz")
        class Dummy:
            name = "test_dummy_alg_xyz"

            def run(self, graph, rng):  # pragma: no cover
                raise NotImplementedError

        try:
            with pytest.raises(ValueError):
                register("test_dummy_alg_xyz")(Dummy)
        finally:
            _REGISTRY.pop("test_dummy_alg_xyz", None)

    def test_not_found_lists_available(self):
        with pytest.raises(AlgorithmNotFound) as exc:
            make("nope")
        assert "luby" in str(exc.value)


class TestMISResult:
    def test_membership_coerced_to_bool(self):
        res = MISResult(membership=np.array([1, 0, 1]))
        assert res.membership.dtype == bool

    def test_info_defaults_empty(self):
        res = MISResult(membership=np.array([True]))
        assert dict(res.info) == {}

    def test_size(self):
        res = MISResult(membership=np.array([True, True, False]))
        assert res.size == 2

    def test_rounds_default_zero(self):
        assert MISResult(membership=np.array([True])).rounds == 0


class TestProtocolConformance:
    def test_every_registered_algorithm_runs_on_a_path(self):
        """End-to-end: each registry entry produces a valid MIS on P6
        (skipping those whose preconditions exclude it)."""
        from repro.analysis import is_maximal_independent_set
        from repro.core import available
        from repro.graphs.generators import path_graph

        g = path_graph(6)
        for name in available():
            alg = make(name)
            res = alg.run(g, np.random.default_rng(0))
            assert is_maximal_independent_set(g, res.membership), name
