"""Cross-engine agreement: faithful node-process vs vectorized engines.

The two layers implement the same algorithms; their per-node join
probabilities must agree statistically.  We compare empirical frequencies
with a binomial-aware tolerance (union-bounded three-sigma), which keeps
these tests deterministic-in-practice while still able to catch real
distributional divergence.
"""

import numpy as np
import pytest

from repro.algorithms.fair_rooted import FairRooted
from repro.algorithms.fair_tree import FairTree
from repro.algorithms.luby import LubyMIS
from repro.analysis import run_trials
from repro.fast.fair_rooted import FastFairRooted
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.graphs.generators import path_graph, random_tree, star_graph


def assert_distributions_close(slow_est, fast_est, sigma=4.0):
    ps = slow_est.probabilities
    pf = fast_est.probabilities
    # pooled standard error per node
    se = np.sqrt(
        ps * (1 - ps) / slow_est.trials + pf * (1 - pf) / fast_est.trials
    )
    tol = sigma * np.maximum(se, 0.02)
    assert np.all(np.abs(ps - pf) <= tol), (
        f"max deviation {np.abs(ps - pf).max():.3f} exceeds tolerance"
    )


@pytest.mark.slow
class TestLubyAgreement:
    def test_star(self, thorough):
        trials = (1200, 6000) if thorough else (300, 1500)
        g = star_graph(10)
        slow = run_trials(LubyMIS(), g, trials[0], seed=1)
        fast = run_trials(FastLuby(), g, trials[1], seed=2)
        assert_distributions_close(slow, fast)

    def test_tree(self, thorough):
        trials = (800, 4000) if thorough else (250, 1200)
        g = random_tree(15, seed=3).graph
        slow = run_trials(LubyMIS(), g, trials[0], seed=1)
        fast = run_trials(FastLuby(), g, trials[1], seed=2)
        assert_distributions_close(slow, fast)


@pytest.mark.slow
class TestFairTreeAgreement:
    def test_path(self, thorough):
        trials = (600, 3000) if thorough else (200, 1000)
        g = path_graph(8)
        slow = run_trials(FairTree(), g, trials[0], seed=1)
        fast = run_trials(FastFairTree(), g, trials[1], seed=2)
        assert_distributions_close(slow, fast)

    def test_tree(self, thorough):
        trials = (500, 2500) if thorough else (150, 800)
        g = random_tree(12, seed=5).graph
        slow = run_trials(FairTree(), g, trials[0], seed=1)
        fast = run_trials(FastFairTree(), g, trials[1], seed=2)
        assert_distributions_close(slow, fast)


@pytest.mark.slow
class TestFairRootedAgreement:
    def test_tree(self, thorough):
        trials = (800, 4000) if thorough else (300, 1500)
        tree = random_tree(12, seed=6)
        slow = run_trials(FairRooted(tree=tree), tree.graph, trials[0], seed=1)
        fast = run_trials(
            FastFairRooted(tree=tree), tree.graph, trials[1], seed=2
        )
        assert_distributions_close(slow, fast)

    def test_star(self, thorough):
        trials = (600, 3000) if thorough else (250, 1200)
        tree_graph = star_graph(8)
        slow = run_trials(FairRooted(), tree_graph, trials[0], seed=1)
        fast = run_trials(FastFairRooted(), tree_graph, trials[1], seed=2)
        assert_distributions_close(slow, fast)


@pytest.mark.slow
class TestFairBipartAgreement:
    def test_grid(self, thorough):
        from repro.algorithms.fair_bipart import FairBipart
        from repro.fast.blocks import FastFairBipart
        from repro.graphs.generators import grid_graph

        trials = (400, 2000) if thorough else (120, 600)
        g = grid_graph(3, 3)
        slow = run_trials(FairBipart(), g, trials[0], seed=1)
        fast = run_trials(FastFairBipart(), g, trials[1], seed=2)
        assert_distributions_close(slow, fast, sigma=4.5)

    def test_small_tree(self, thorough):
        from repro.algorithms.fair_bipart import FairBipart
        from repro.fast.blocks import FastFairBipart

        trials = (300, 1500) if thorough else (100, 500)
        g = random_tree(10, seed=4).graph
        slow = run_trials(FairBipart(), g, trials[0], seed=1)
        fast = run_trials(FastFairBipart(), g, trials[1], seed=2)
        assert_distributions_close(slow, fast, sigma=4.5)


class TestObservabilityParity:
    """Both engines must report consistent round data into the obs layer.

    The bridge feeds two histogram families from two different paths:
    ``engine_rounds_per_run`` (observed by ``SyncNetwork.run``) and
    ``trial_rounds`` (observed per trial from ``MISResult``).  For the
    same seeded executions those must agree exactly — and the phase
    profiler's per-round records must match the engines' own counts.
    """

    def test_faithful_bridge_paths_agree(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        g = random_tree(20, seed=9).graph
        reg = MetricsRegistry()
        with use_registry(reg):
            run_trials(LubyMIS(), g, 5, seed=3, n_jobs=1)
        snap = reg.snapshot()["histograms"]
        engine = snap["engine_rounds_per_run"][""]
        trials = snap["trial_rounds"]['algorithm="luby"']
        assert engine["count"] == trials["count"] == 5
        assert engine["sum"] == trials["sum"]

    def test_fast_engine_iterations_reach_bridge_unchanged(self):
        import numpy as np

        from repro.obs.metrics import MetricsRegistry, use_registry
        from repro.obs.profile import use_profiler

        g = random_tree(20, seed=9).graph
        reg = MetricsRegistry()
        with use_registry(reg), use_profiler() as prof:
            result = FastLuby().run(g, np.random.default_rng(0))
            from repro.obs.bridge import observe_trial

            observe_trial(result_name := FastLuby().name, result)
        series = reg.snapshot()["histograms"]["trial_rounds"][
            f'algorithm="{result_name}"'
        ]
        iterations = result.info["iterations"]
        assert series["sum"] == float(iterations)
        # the profiler saw exactly as many sweep rounds as the engine reports
        assert prof.report()["rounds"]["luby.sweep"]["rounds"] == iterations

    def test_profiler_round_count_matches_run_metrics(self):
        import numpy as np

        from repro.obs.profile import use_profiler

        g = random_tree(18, seed=2).graph
        with use_profiler() as prof:
            result = FairTree().run(g, np.random.default_rng(1))
        rounds = prof.report()["rounds"]["network.round"]["rounds"]
        assert rounds == result.metrics.rounds == result.rounds

    def test_profiler_does_not_perturb_results(self):
        import numpy as np

        from repro.obs.profile import use_profiler

        g = random_tree(25, seed=4).graph
        bare = FastFairTree().run(g, np.random.default_rng(7))
        with use_profiler():
            profiled = FastFairTree().run(g, np.random.default_rng(7))
        assert np.array_equal(bare.membership, profiled.membership)
        assert bare.info == profiled.info


@pytest.mark.slow
class TestColeVishkinAgreement:
    def test_fast_cv_identical_to_faithful(self):
        """Both CV layers are deterministic given the same rooting: their
        outputs must be *identical*, not just close."""
        import numpy as np

        from repro.algorithms.cole_vishkin import ColeVishkinMIS
        from repro.fast.fair_rooted import FastColeVishkin

        for seed in range(4):
            tree = random_tree(30, seed=seed)
            slow = ColeVishkinMIS(tree=tree).run(
                tree.graph, np.random.default_rng(0)
            )
            fast = FastColeVishkin(tree=tree).run(
                tree.graph, np.random.default_rng(99)
            )
            assert np.array_equal(slow.membership, fast.membership)
