"""Tests for the algorithm registry and the public package surface."""

import numpy as np
import pytest

import repro
from repro.core import AlgorithmNotFound, available, make
from repro.graphs.generators import path_graph


class TestRegistry:
    def test_all_algorithms_registered(self):
        names = available()
        for expected in (
            "luby",
            "luby_fast",
            "cntrl_fair_bipart",
            "cole_vishkin",
            "fair_rooted",
            "fair_rooted_fast",
            "fair_tree",
            "fair_tree_fast",
            "fair_bipart",
            "fair_bipart_fast",
            "color_mis",
            "color_mis_fast",
        ):
            assert expected in names

    def test_make_instantiates(self):
        alg = make("luby_fast")
        res = alg.run(path_graph(5), np.random.default_rng(0))
        assert res.membership.shape == (5,)

    def test_make_with_kwargs(self):
        alg = make("fair_tree_fast", gamma=4)
        assert alg.gamma == 4

    def test_unknown_name(self):
        with pytest.raises(AlgorithmNotFound):
            make("quantum_mis")

    def test_registered_objects_satisfy_protocol(self):
        from repro.core import MISAlgorithm

        for name in available():
            alg = make(name)
            assert isinstance(alg, MISAlgorithm)
            assert isinstance(alg.name, str)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        from repro import FastFairTree, FastLuby, run_trials
        from repro.graphs import random_tree

        tree = random_tree(50, seed=1).graph
        fair = run_trials(FastFairTree(), tree, trials=100, seed=0)
        luby = run_trials(FastLuby(), tree, trials=100, seed=0)
        assert fair.inequality < float("inf")
        assert luby.inequality > 1.0

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
