"""Unit tests for the engine → registry observation bridge."""

import numpy as np
import pytest

from repro.core.result import MISResult
from repro.obs.bridge import observe_run_metrics, observe_trial
from repro.obs.metrics import MetricsRegistry, set_enabled, use_registry
from repro.runtime.metrics import RunMetrics


@pytest.fixture(autouse=True)
def _restore():
    yield
    set_enabled(True)


def _result(rounds=0, info=None):
    return MISResult(
        membership=np.zeros(3, dtype=bool), rounds=rounds, info=info or {}
    )


class TestObserveRunMetrics:
    def test_populates_engine_histograms(self):
        reg = MetricsRegistry()
        m = RunMetrics()
        m.record_round(1, messages=10, slots=20, active_nodes=5)
        m.record_round(2, messages=4, slots=8, active_nodes=2)
        observe_run_metrics(m, registry=reg)
        snap = reg.snapshot()
        assert snap["histograms"]["engine_rounds_per_run"][""]["sum"] == 2.0
        assert snap["histograms"]["engine_messages_per_run"][""]["sum"] == 14.0
        assert snap["histograms"]["engine_slots_per_run"][""]["sum"] == 28.0
        assert snap["counters"]["engine_runs_total"][""] == 1.0

    def test_context_registry_used_by_default(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            observe_run_metrics(RunMetrics())
        assert reg.snapshot()["counters"]["engine_runs_total"][""] == 1.0

    def test_disabled_is_noop(self):
        reg = MetricsRegistry()
        set_enabled(False)
        observe_run_metrics(RunMetrics(), registry=reg)
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestObserveTrial:
    def test_faithful_rounds(self):
        reg = MetricsRegistry()
        observe_trial("luby", _result(rounds=7), registry=reg)
        snap = reg.snapshot()
        series = snap["histograms"]["trial_rounds"]['algorithm="luby"']
        assert series["count"] == 1
        assert series["sum"] == 7.0

    def test_fast_sweep_iterations(self):
        reg = MetricsRegistry()
        observe_trial(
            "luby_fast", _result(rounds=0, info={"iterations": 3}), registry=reg
        )
        series = reg.snapshot()["histograms"]["trial_rounds"][
            'algorithm="luby_fast"'
        ]
        assert series["sum"] == 3.0

    def test_no_round_signal_skipped(self):
        reg = MetricsRegistry()
        observe_trial("vectorized", _result(rounds=0), registry=reg)
        assert reg.snapshot()["histograms"] == {}

    def test_engine_run_feeds_context_registry(self):
        # End-to-end: a SyncNetwork run observes into the bound registry.
        from repro.algorithms.luby import LubyProcess
        from repro.graphs.generators import path_graph
        from repro.runtime import SyncNetwork

        reg = MetricsRegistry()
        with use_registry(reg):
            SyncNetwork(path_graph(5)).run(lambda v: LubyProcess(), seed=0)
        assert reg.snapshot()["counters"]["engine_runs_total"][""] == 1.0


class TestCrossEngineParity:
    """A faithful result (``rounds``) and a fast result (``iterations``)
    with the same round count must produce identical ``trial_rounds``
    series — downstream dashboards treat the families as one signal."""

    def test_equal_round_counts_identical_series(self):
        reg_slow = MetricsRegistry()
        reg_fast = MetricsRegistry()
        observe_trial("alg", _result(rounds=6), registry=reg_slow)
        observe_trial(
            "alg", _result(rounds=0, info={"iterations": 6}), registry=reg_fast
        )
        slow = reg_slow.snapshot()["histograms"]["trial_rounds"]
        fast = reg_fast.snapshot()["histograms"]["trial_rounds"]
        assert slow == fast

    def test_faithful_run_metrics_consistent_with_result(self):
        # MISResult.rounds is defined as the run's RunMetrics.rounds, so
        # both bridge paths see the same number for one seeded run.
        import numpy as np

        from repro.algorithms.luby import LubyMIS
        from repro.graphs.generators import path_graph

        result = LubyMIS().run(path_graph(6), np.random.default_rng(3))
        assert result.metrics is not None
        assert result.rounds == result.metrics.rounds
