"""``repro top`` dashboard: windowed math and frame rendering."""

import io
import json

import pytest

from repro.obs.dashboard import (
    TopDashboard,
    _delta_buckets,
    _fraction_over,
    _quantile,
    run_top,
    snapshot_from_registry,
)
from repro.obs.metrics import MetricsRegistry


def _latency_hist(buckets, count, total):
    return {'algorithm="a"': {"count": count, "sum": total, "buckets": buckets}}


def _point(
    ts,
    *,
    latency=None,
    workers=None,
    counters=None,
    served=None,
    queue=None,
):
    """One stats-event snapshot in the ``--stats-file`` wire shape."""
    histograms = {}
    if latency is not None:
        histograms["service_request_latency_seconds"] = latency
    if workers is not None:
        histograms["worker_chunk_seconds"] = {
            f'algorithm="a",worker="{w}"': {
                "count": chunks,
                "sum": busy,
                "buckets": {"+Inf": chunks},
            }
            for w, (busy, chunks) in workers.items()
        }
    gauges = {}
    if queue is not None:
        gauges["service_queue_depth_current"] = {"": queue}
    point = {
        "event": "stats",
        "ts": ts,
        "metrics": {"counters": {}, "gauges": gauges, "histograms": histograms},
    }
    if counters is not None:
        point["counters"] = counters
    if served is not None:
        point["requests_served"] = served
    return point


class TestWindowMath:
    def test_delta_buckets_subtract_oldest(self):
        new = {"0.1": 5, "1": 9, "+Inf": 10}
        old = {"0.1": 2, "1": 4, "+Inf": 4}
        assert _delta_buckets(new, old) == [(0.1, 3.0), (1.0, 5.0), (float("inf"), 6.0)]

    def test_delta_never_negative_after_restart(self):
        # a restarted service resets cumulative counts; the window must
        # clamp rather than report negative mass
        assert _delta_buckets({"+Inf": 1}, {"+Inf": 5}) == [(float("inf"), 0.0)]

    def test_quantile_interpolates(self):
        pairs = [(0.1, 2.0), (1.0, 4.0), (float("inf"), 4.0)]
        assert _quantile(pairs, 0.50) == pytest.approx(0.1)
        assert _quantile(pairs, 0.95) == pytest.approx(0.91)

    def test_quantile_empty_is_none(self):
        assert _quantile([], 0.5) is None
        assert _quantile([(1.0, 0.0)], 0.5) is None

    def test_fraction_over_interpolates(self):
        pairs = [(0.1, 2.0), (1.0, 4.0), (float("inf"), 4.0)]
        assert _fraction_over(pairs, 0.25) == pytest.approx(1 - (2 + 2 / 6) / 4)
        assert _fraction_over([], 0.25) is None


class TestDashboard:
    def test_rejects_degenerate_slo_target(self):
        with pytest.raises(ValueError):
            TopDashboard(slo_target=1.0)

    def _loaded(self):
        dash = TopDashboard(slo_ms=250.0, slo_target=0.95, window_s=60.0)
        dash.update(
            _point(
                100.0,
                latency=_latency_hist({"0.1": 0, "1": 0, "+Inf": 0}, 0, 0.0),
                workers={"pid:1": (0.0, 0), "pid:2": (0.0, 0)},
                counters={"requests": 0, "cache_hits": 0, "cache_misses": 0},
            )
        )
        dash.update(
            _point(
                130.0,
                latency=_latency_hist({"0.1": 2, "1": 4, "+Inf": 4}, 4, 2.0),
                workers={"pid:1": (15.0, 3), "pid:2": (6.0, 2)},
                counters={
                    "requests": 60,
                    "cache_hits": 3,
                    "cache_misses": 1,
                    "evidence_hits": 1,
                    "evidence_misses": 1,
                },
                served=60,
                queue=4.0,
            )
        )
        return dash

    def test_latency_percentiles_from_windowed_delta(self):
        latency = self._loaded().latency_ms()
        assert latency["p50"] == pytest.approx(100.0)
        assert latency["p95"] == pytest.approx(910.0)
        assert latency["over_slo"] == pytest.approx(1 - (2 + 2 / 6) / 4)

    def test_slo_burn_is_over_fraction_vs_budget(self):
        dash = self._loaded()
        over = dash.latency_ms()["over_slo"]
        assert dash.slo_burn() == pytest.approx(over / 0.05)
        assert dash.slo_burn() > 1.0  # this workload violates the SLO

    def test_worker_utilization_is_busy_per_wall_second(self):
        workers = self._loaded().workers()
        by_name = {w["worker"]: w for w in workers}
        assert by_name["pid:1"]["utilization"] == pytest.approx(15.0 / 30.0)
        assert by_name["pid:2"]["utilization"] == pytest.approx(6.0 / 30.0)
        assert by_name["pid:1"]["chunks"] == 3
        assert [w["worker"] for w in workers] == ["pid:1", "pid:2"]

    def test_queue_depth_and_request_rate(self):
        dash = self._loaded()
        assert dash.queue_depth() == 4.0
        oldest, newest = dash._window()
        assert dash._counter_rate(oldest, newest, "requests") == pytest.approx(2.0)

    def test_render_frame(self):
        frame = self._loaded().render()
        assert "repro top" in frame
        assert "p50 100.00" in frame
        assert "!! SLO" in frame
        assert "cache hit 75.0%" in frame
        assert "pid:1" in frame
        assert "\x1b[2J" not in frame
        assert "\x1b[2J" in self._loaded().render(ansi=True)

    def test_single_point_renders_dashes_not_rates(self):
        # one snapshot gives no rate basis: utilization and rate show
        # "-" rather than a fabricated number
        dash = TopDashboard()
        dash.update(_point(100.0, workers={"pid:1": (5.0, 2)}, served=10))
        frame = dash.render()
        assert "rate: -" in frame
        assert "   - " in frame
        assert "busy 5.00s  chunks 2" in frame

    def test_empty_dashboard_waits(self):
        assert "waiting for stats" in TopDashboard().render()

    def test_ignores_non_stats_events(self):
        dash = TopDashboard()
        dash.update({"event": "result", "ts": 1.0})
        assert "waiting for stats" in dash.render()


class TestFrontendRow:
    @staticmethod
    def _fe_point(ts, *, admitted, shed, rate_limited=0.0, sat=None, peak=None):
        gauges = {}
        if sat is not None:
            gauges["frontend_queue_saturation"] = {"": sat}
        if peak is not None:
            gauges["frontend_admission_peak_load"] = {"": peak}
        return {
            "event": "stats",
            "ts": ts,
            "metrics": {
                "counters": {
                    "frontend_admitted_total": {"": admitted},
                    "frontend_shed_total": {"": shed},
                    "frontend_rate_limited_total": {"": rate_limited},
                },
                "gauges": gauges,
                "histograms": {},
            },
        }

    def test_absent_without_frontend_families(self):
        dash = TopDashboard()
        dash.update(_point(100.0, served=1))
        assert dash.frontend() is None
        assert "frontend " not in dash.render()

    def test_admission_view_and_render(self):
        dash = TopDashboard(window_s=60.0)
        dash.update(self._fe_point(100.0, admitted=0, shed=0))
        dash.update(
            self._fe_point(
                110.0,
                admitted=90,
                shed=10,
                rate_limited=3,
                sat=0.25,
                peak=0.42,
            )
        )
        front = dash.frontend()
        assert front is not None
        assert front["admit_rate"] == pytest.approx(9.0)
        assert front["shed_pct"] == pytest.approx(10.0)
        assert front["rate_limited"] == 3.0
        assert front["saturation"] == pytest.approx(0.25)
        assert front["peak_load"] == pytest.approx(0.42)
        frame = dash.render()
        assert "frontend    admit 9.0/s" in frame
        assert "shed 10.0%" in frame
        assert "queue sat 25%" in frame
        assert "peak load 0.42" in frame

    def test_zero_decisions_render_dashes(self):
        dash = TopDashboard()
        dash.update(self._fe_point(100.0, admitted=0, shed=0))
        front = dash.frontend()
        assert front is not None
        assert front["shed_pct"] is None
        assert "shed -" in dash.render()


class TestSnapshotFromRegistry:
    def test_shapes_like_stats_event(self):
        reg = MetricsRegistry()
        reg.counter("requests_total").inc()
        snap = snapshot_from_registry(reg, requests_served=7)
        assert snap["event"] == "stats"
        assert snap["ts"] > 0
        assert snap["metrics"]["counters"]["requests_total"][""] == 1.0
        assert snap["requests_served"] == 7
        assert "counters" not in snap  # only included when a tracker is passed


class TestRunTop:
    def test_once_renders_single_plain_frame(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        lines = [
            json.dumps(_point(100.0, served=1)),
            "not json at all",
            json.dumps({"event": "result"}),
            json.dumps(_point(101.0, served=2, queue=1.0)),
        ]
        path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        run_top(str(path), once=True, out=out)
        frame = out.getvalue()
        assert frame.count("repro top") == 1
        assert "requests: 2" in frame
        assert "\x1b[2J" not in frame
