"""Span export: ring collector, JSONL sinks, Chrome trace rendering."""

import io
import json

import pytest

from repro.obs.export import (
    JsonlSpanSink,
    SpanCollector,
    current_collector,
    install_collector,
    read_spans_jsonl,
    to_chrome_trace,
    uninstall_collector,
)
from repro.obs.spans import capture_spans, span


def _record(name="op", trace="t1", span_id="s1", parent=None, ts=1.0, dur=0.5):
    return {
        "name": name,
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent,
        "ts": ts,
        "dur_s": dur,
        "pid": 100,
        "tid": 7,
        "fields": {"algorithm": "luby_fast"},
    }


class TestSpanCollector:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanCollector(0)

    def test_ring_evicts_oldest(self):
        coll = SpanCollector(capacity=3)
        for i in range(5):
            coll(_record(name=f"op{i}"))
        assert len(coll) == 3
        assert [r["name"] for r in coll.records()] == ["op2", "op3", "op4"]

    def test_filter_by_trace_and_trace_ids_order(self):
        coll = SpanCollector(capacity=8)
        coll(_record(trace="t1", span_id="a"))
        coll(_record(trace="t2", span_id="b"))
        coll(_record(trace="t1", span_id="c"))
        assert [r["span_id"] for r in coll.records("t1")] == ["a", "c"]
        assert coll.trace_ids() == ["t1", "t2"]

    def test_clear(self):
        coll = SpanCollector(capacity=4)
        coll(_record())
        coll.clear()
        assert len(coll) == 0
        assert coll.trace_ids() == []

    def test_usable_as_span_sink(self):
        coll = SpanCollector(capacity=4)
        with capture_spans(coll):
            with span("collected.op"):
                pass
        (rec,) = coll.records()
        assert rec["name"] == "collected.op"


class TestJsonlSink:
    def test_path_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSpanSink(path)
        sink(_record(name="first"))
        sink(_record(name="second", trace="t2"))
        sink.close()
        records = read_spans_jsonl(path)
        assert [r["name"] for r in records] == ["first", "second"]

    def test_stream_target_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSpanSink(buf)
        sink(_record())
        sink.close()
        assert not buf.closed  # caller owns the handle
        assert json.loads(buf.getvalue().splitlines()[0])["name"] == "op"

    def test_flushes_per_record(self, tmp_path):
        # trace files matter most when the writer dies mid-run: every
        # record must be on disk before the next call returns
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSpanSink(path)
        sink(_record(name="durable"))
        assert read_spans_jsonl(path)[0]["name"] == "durable"
        sink.close()

    def test_reader_skips_blank_and_truncated_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(_record(name="good"))
            + "\n\n"
            + '{"name": "trunca'  # SIGKILLed writer's partial last line
        )
        records = read_spans_jsonl(str(path))
        assert [r["name"] for r in records] == ["good"]


class TestChromeTrace:
    def test_complete_events_with_microsecond_units(self):
        doc = to_chrome_trace([_record(ts=2.0, dur=0.25)])
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(2.0e6)
        assert event["dur"] == pytest.approx(0.25e6)
        assert event["pid"] == 100
        assert event["tid"] == 7
        assert event["args"]["span_id"] == "s1"
        assert event["args"]["algorithm"] == "luby_fast"

    def test_events_sorted_by_timestamp(self):
        doc = to_chrome_trace(
            [_record(name="late", ts=5.0), _record(name="early", ts=1.0)]
        )
        assert [e["name"] for e in doc["traceEvents"]] == ["early", "late"]

    def test_filters_to_requested_trace(self):
        doc = to_chrome_trace(
            [_record(trace="t1"), _record(trace="t2", name="other")],
            trace_id="t2",
        )
        assert [e["name"] for e in doc["traceEvents"]] == ["other"]

    def test_output_is_json_serializable(self):
        doc = to_chrome_trace([_record()])
        json.dumps(doc)  # must not raise


class TestGlobalCollector:
    def teardown_method(self):
        uninstall_collector()

    def test_install_is_idempotent_and_receives_spans(self):
        coll = install_collector(capacity=16)
        assert install_collector() is coll
        assert current_collector() is coll
        with span("global.op"):
            pass
        assert "global.op" in [r["name"] for r in coll.records()]

    def test_uninstall_stops_collection(self):
        coll = install_collector(capacity=16)
        uninstall_collector()
        assert current_collector() is None
        with span("after.uninstall"):
            pass
        assert "after.uninstall" not in [r["name"] for r in coll.records()]
