"""SLO health rules (`repro health`)."""

import json

import pytest

from repro.obs.health import (
    STATUSES,
    HealthReport,
    HealthRule,
    RuleResult,
    default_rules,
    evaluate_health,
    load_stats_snapshot,
)


def latency_snapshot(ms: float, count: int = 100) -> dict:
    """A snapshot whose request-latency mass sits entirely at *ms*."""
    sec = ms / 1e3
    buckets = {f"{sec:g}": count, "+Inf": count}
    return {
        "metrics": {
            "histograms": {
                "service_request_latency_seconds": {
                    "algorithm=fair_tree_fast": {
                        "count": count,
                        "sum": sec * count,
                        "buckets": buckets,
                    }
                }
            }
        }
    }


class TestHealthRule:
    def test_direction_validated(self):
        with pytest.raises(ValueError):
            HealthRule(
                name="x", description="", extract=lambda s: 0.0,
                direction="sideways",
            )

    def test_missing_data_is_ok(self):
        rule = HealthRule(
            name="x", description="", extract=lambda s: None,
            direction="above", warn=0, crit=0,
        )
        res = rule.evaluate({})
        assert res.status == "ok" and res.value is None

    def test_above_thresholds(self):
        rule = HealthRule(
            name="x", description="", extract=lambda s: s["v"],
            direction="above", warn=10, crit=100,
        )
        assert rule.evaluate({"v": 10}).status == "ok"  # strict inequality
        assert rule.evaluate({"v": 11}).status == "warn"
        assert rule.evaluate({"v": 101}).status == "crit"

    def test_below_thresholds(self):
        rule = HealthRule(
            name="x", description="", extract=lambda s: s["v"],
            direction="below", warn=0.5, crit=0.1,
        )
        assert rule.evaluate({"v": 0.5}).status == "ok"
        assert rule.evaluate({"v": 0.4}).status == "warn"
        assert rule.evaluate({"v": 0.05}).status == "crit"

    def test_none_threshold_skips_severity(self):
        rule = HealthRule(
            name="x", description="", extract=lambda s: s["v"],
            direction="above", warn=1, crit=None,
        )
        assert rule.evaluate({"v": 1e9}).status == "warn"


class TestDefaultRules:
    def test_empty_snapshot_all_ok(self):
        report = evaluate_health({})
        assert report.status == "ok"
        assert report.exit_code == 0
        assert all(r.value is None for r in report.results)

    def test_latency_warn_and_crit_derive_from_slo(self):
        ok = evaluate_health(latency_snapshot(100), slo_ms=250)
        warn = evaluate_health(latency_snapshot(600), slo_ms=250)
        crit = evaluate_health(latency_snapshot(2000), slo_ms=250)
        assert ok.status_of("latency_p99_ms") == "ok"
        assert warn.status_of("latency_p99_ms") == "warn"
        assert warn.exit_code == 1
        assert crit.status_of("latency_p99_ms") == "crit"
        assert crit.exit_code == 2

    def test_queue_depth_gauge(self):
        snap = {
            "metrics": {
                "gauges": {"service_queue_depth_current": {"": 500.0}}
            }
        }
        assert evaluate_health(snap).status_of("queue_depth") == "crit"

    def test_early_stop_ratio_from_counters_block(self):
        snap = {"counters": {"early_stops": 1, "precision_requests": 20}}
        report = evaluate_health(snap)
        assert report.status_of("early_stop_ratio") == "crit"

    def test_counter_falls_back_to_registry_series(self):
        snap = {
            "metrics": {
                "counters": {
                    "service_early_stops_total": {"": 9},
                    "service_precision_requests_total": {"": 10},
                }
            }
        }
        assert evaluate_health(snap).status_of("early_stop_ratio") == "ok"

    def test_zero_denominator_is_no_data(self):
        snap = {"counters": {"early_stops": 0, "precision_requests": 0}}
        report = evaluate_health(snap)
        assert report.status_of("early_stop_ratio") == "ok"

    def test_fallbacks_and_duplicates_warn_on_any(self):
        snap = {
            "metrics": {
                "counters": {
                    "service_vectorized_fallback_total": {
                        "algorithm=luby_fast": 1
                    },
                    "telemetry_chunks_duplicate_total": {"worker=0": 2},
                }
            }
        }
        report = evaluate_health(snap)
        assert report.status_of("vectorized_fallbacks") == "warn"
        assert report.status_of("telemetry_duplicates") == "warn"
        assert {r.rule.name for r in report.failing()} == {
            "vectorized_fallbacks",
            "telemetry_duplicates",
        }

    def test_frontend_rules_no_data_is_ok(self):
        # Single-process deployments have no frontend_* families at all.
        report = evaluate_health({"metrics": {"counters": {}, "gauges": {}}})
        assert report.status_of("frontend_shed_rate") == "ok"
        assert report.status_of("frontend_queue_saturation") == "ok"

    def test_frontend_shed_rate_thresholds(self):
        def snap(admitted: float, shed: float) -> dict:
            return {
                "metrics": {
                    "counters": {
                        "frontend_admitted_total": {"": admitted},
                        "frontend_shed_total": {"": shed},
                    }
                }
            }

        assert evaluate_health(snap(100, 0)).status_of(
            "frontend_shed_rate") == "ok"
        assert evaluate_health(snap(95, 5)).status_of(
            "frontend_shed_rate") == "warn"
        assert evaluate_health(snap(50, 50)).status_of(
            "frontend_shed_rate") == "crit"

    def test_frontend_shed_rate_zero_decisions_is_no_data(self):
        snap = {
            "metrics": {
                "counters": {
                    "frontend_admitted_total": {"": 0},
                    "frontend_shed_total": {"": 0},
                }
            }
        }
        assert evaluate_health(snap).status_of("frontend_shed_rate") == "ok"

    def test_frontend_queue_saturation_thresholds(self):
        def snap(sat: float) -> dict:
            return {
                "metrics": {
                    "gauges": {"frontend_queue_saturation": {"": sat}}
                }
            }

        assert evaluate_health(snap(0.3)).status_of(
            "frontend_queue_saturation") == "ok"
        assert evaluate_health(snap(0.7)).status_of(
            "frontend_queue_saturation") == "warn"
        assert evaluate_health(snap(0.95)).status_of(
            "frontend_queue_saturation") == "crit"


class TestHealthReport:
    def _mixed(self) -> HealthReport:
        mk = lambda n, v, w, c: HealthRule(  # noqa: E731
            name=n, description=n, extract=lambda s: v,
            direction="above", warn=w, crit=c,
        )
        rules = (mk("a", 1, 10, 20), mk("b", 15, 10, 20), mk("c", 25, 10, 20))
        return evaluate_health({}, rules=rules)

    def test_worst_status_wins(self):
        report = self._mixed()
        assert report.status == "crit" and report.exit_code == 2
        assert [r.rule.name for r in report.failing()] == ["c", "b"]

    def test_status_of_unknown_rule(self):
        assert self._mixed().status_of("nope") is None

    def test_format_marks_and_verdict(self):
        text = self._mixed().format()
        lines = text.splitlines()
        assert lines[0].startswith("ok  ")
        assert lines[1].startswith("WARN")
        assert lines[2].startswith("CRIT")
        assert lines[-1] == "health: crit"

    def test_format_no_data(self):
        report = evaluate_health({})
        assert "(no data)" in report.format()

    def test_to_json_round_trips_through_dumps(self):
        doc = json.loads(json.dumps(self._mixed().to_json()))
        assert doc["status"] == "crit"
        assert doc["exit_code"] == 2
        assert [r["rule"] for r in doc["rules"]] == ["a", "b", "c"]

    def test_empty_rule_set_is_ok(self):
        report = HealthReport(results=())
        assert report.status == "ok" and report.exit_code == 0

    def test_statuses_index_is_exit_code(self):
        assert STATUSES == ("ok", "warn", "crit")
        assert isinstance(
            RuleResult(rule=default_rules()[0], status="ok", value=None),
            RuleResult,
        )


class TestLoadStatsSnapshot:
    def test_last_stats_event_wins(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        lines = [
            json.dumps({"event": "stats", "ts": 1, "counters": {}}),
            "not json at all",
            json.dumps({"event": "span", "name": "x"}),
            json.dumps({"event": "stats", "ts": 2, "counters": {"a": 1}}),
            "",
        ]
        path.write_text("\n".join(lines) + "\n")
        snap = load_stats_snapshot(str(path))
        assert snap["ts"] == 2

    def test_empty_file_returns_none(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        path.write_text("")
        assert load_stats_snapshot(str(path)) is None
