"""Unit tests for structured JSON-lines logging."""

import io
import json

import pytest

from repro.obs.logging import (
    configure_logging,
    disable_logging,
    get_logger,
    logging_enabled,
)
from repro.obs.spans import bind_trace


@pytest.fixture(autouse=True)
def _silence_after():
    yield
    disable_logging()


def capture(level="debug"):
    buf = io.StringIO()
    configure_logging(stream=buf, level=level)
    return buf


def records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestEmission:
    def test_off_by_default(self):
        disable_logging()
        assert not logging_enabled("error")
        # must not raise even with no stream configured
        get_logger("t").info("quiet")

    def test_json_record_shape(self):
        buf = capture()
        get_logger("repro.test").info("hello", answer=42)
        (rec,) = records(buf)
        assert rec["event"] == "hello"
        assert rec["logger"] == "repro.test"
        assert rec["level"] == "info"
        assert rec["answer"] == 42
        assert isinstance(rec["ts"], float)

    def test_level_filtering(self):
        buf = capture(level="warning")
        log = get_logger("t")
        log.debug("nope")
        log.info("nope")
        log.warning("yes")
        log.error("yes")
        assert [r["level"] for r in records(buf)] == ["warning", "error"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(stream=io.StringIO(), level="loud")

    def test_unserializable_fields_fall_back_to_repr(self):
        buf = capture()
        get_logger("t").info("obj", thing=object())
        (rec,) = records(buf)
        assert "object object" in rec["thing"]


class TestBindingAndContext:
    def test_bound_fields_inherited(self):
        buf = capture()
        child = get_logger("t").bind(request_id="r-1")
        child.info("evt", extra=1)
        (rec,) = records(buf)
        assert rec["request_id"] == "r-1"
        assert rec["extra"] == 1

    def test_records_carry_active_trace(self):
        buf = capture()
        with bind_trace("trace-abc", "span-xyz"):
            get_logger("t").info("inside")
        get_logger("t").info("outside")
        inside, outside = records(buf)
        assert inside["trace_id"] == "trace-abc"
        assert inside["span_id"] == "span-xyz"
        assert "trace_id" not in outside

    def test_explicit_trace_overrides_ambient(self):
        buf = capture()
        with bind_trace("ambient"):
            get_logger("t").info("evt", trace_id="explicit")
        (rec,) = records(buf)
        assert rec["trace_id"] == "explicit"

    def test_logger_cache(self):
        assert get_logger("same") is get_logger("same")
