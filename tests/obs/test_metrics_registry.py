"""Unit tests for the metrics registry (counters/gauges/histograms)."""

import threading

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    get_registry,
    use_registry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_reset(self):
        c = Counter()
        c.inc(3)
        c.reset()
        assert c.value == 0.0

    def test_thread_safety(self):
        c = Counter()

        def bump():
            for _ in range(2000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0


class TestGauge:
    def test_up_and_down(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0


class TestHistogram:
    def test_le_semantics(self):
        # bounds are inclusive upper bounds (Prometheus ``le``)
        h = Histogram(buckets=(1, 2, 4))
        for v in (1, 2, 2, 3, 100):
            h.observe(v)
        cum = dict(h.cumulative_buckets())
        assert cum[1.0] == 1
        assert cum[2.0] == 3
        assert cum[4.0] == 4
        assert cum[float("inf")] == 5
        assert h.count == 5
        assert h.sum == 108.0

    def test_bounds_sorted_and_distinct(self):
        h = Histogram(buckets=(4, 1, 2))
        assert h.bounds == (1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            Histogram(buckets=(1, 1))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_snapshot_value(self):
        h = Histogram(buckets=(1, 2))
        h.observe(1.5)
        snap = h.snapshot_value()
        assert snap["count"] == 1
        assert snap["buckets"] == {"1": 0, "2": 1, "+Inf": 1}


class TestMetricFamily:
    def test_labeled_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("reqs", labelnames=("algorithm",))
        fam.labels(algorithm="a").inc()
        fam.labels(algorithm="a").inc()
        fam.labels(algorithm="b").inc(5)
        values = {
            labels["algorithm"]: m.value for labels, m in fam.children()
        }
        assert values == {"a": 2.0, "b": 5.0}

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("reqs2", labelnames=("algorithm",))
        with pytest.raises(ValueError):
            fam.labels(other="x")
        with pytest.raises(ValueError):
            fam.inc()  # labeled family has no solo child

    def test_unlabeled_delegation(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc(2)
        assert reg.counter("plain").value == 2.0


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help text")
        b = reg.counter("x")
        assert a is b

    def test_redeclare_kind_rejected(self):
        reg = MetricsRegistry()
        reg.counter("y")
        with pytest.raises(ValueError):
            reg.gauge("y")
        reg.histogram("z", buckets=COUNT_BUCKETS)
        with pytest.raises(ValueError):
            reg.histogram("z", labelnames=("a",))

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "Requests").inc(3)
        reg.gauge("depth").set(2)
        h = reg.histogram(
            "lat", "Latency", buckets=(0.1, 1.0), labelnames=("alg",)
        )
        h.labels(alg="luby").observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP reqs_total Requests" in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        assert "depth 2" in text
        assert 'lat_bucket{alg="luby",le="0.1"} 0' in text
        assert 'lat_bucket{alg="luby",le="1"} 1' in text
        assert 'lat_bucket{alg="luby",le="+Inf"} 1' in text
        assert 'lat_sum{alg="luby"} 0.5' in text
        assert 'lat_count{alg="luby"} 1' in text

    def test_label_value_escaping(self):
        # Prometheus text-format: backslash, double-quote, and newline in
        # label values must be escaped (regression: they used to pass
        # through raw, corrupting the exposition).
        reg = MetricsRegistry()
        fam = reg.counter("esc_total", "Help", labelnames=("path",))
        fam.labels(path='C:\\tmp\n"x"').inc()
        text = reg.render_prometheus()
        assert 'esc_total{path="C:\\\\tmp\\n\\"x\\""} 1' in text
        assert "\n\"x\"" not in text.replace('\\n', '')  # no raw newline mid-value
        for line in text.splitlines():
            assert line.count('"') % 2 == 0  # every line stays parseable

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("h_total", "line1\nline2\\end").inc()
        text = reg.render_prometheus()
        assert "# HELP h_total line1\\nline2\\\\end" in text

    def test_label_key_round_trip(self):
        from repro.obs.metrics import label_key, parse_label_key

        labels = {"a": 'quo"te', "b": "back\\slash", "c": "new\nline"}
        assert parse_label_key(label_key(labels)) == labels
        assert parse_label_key("") == {}

    def test_empty_families_omitted(self):
        reg = MetricsRegistry()
        reg.counter("declared_only", labelnames=("a",))  # no children yet
        assert reg.render_prometheus() == ""
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", buckets=(1,), labelnames=("k",)).labels(
            k="v"
        ).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"][""] == 1.0
        assert snap["histograms"]["h"]['k="v"']["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.reset()
        assert reg.counter("c").value == 0.0


class TestRegistryResolution:
    def test_default_is_process_global(self):
        assert get_registry() is default_registry()

    def test_use_registry_rebinds_and_restores(self):
        mine = MetricsRegistry()
        with use_registry(mine) as bound:
            assert bound is mine
            assert get_registry() is mine
            mine2 = MetricsRegistry()
            with use_registry(mine2):
                assert get_registry() is mine2
            assert get_registry() is mine
        assert get_registry() is default_registry()


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        h = Histogram(buckets=(10, 20))
        for v in (1, 3, 5, 7, 9):  # all in (0, 10]
            h.observe(v)
        # target = q * 5 observations, all in the first bucket [0, 10]
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_spans_buckets(self):
        h = Histogram(buckets=(1, 2, 4))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(3.0)
        h.observe(3.5)
        # q=0.5 → target 2 obs → cumulative hits 2 at bound 2.0
        assert h.quantile(0.5) == pytest.approx(2.0)
        # q=0.75 → target 3 → halfway through the (2, 4] bucket
        assert h.quantile(0.75) == pytest.approx(3.0)

    def test_inf_bucket_clamps(self):
        h = Histogram(buckets=(1, 2))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_empty_is_none(self):
        # Empty histograms answer None (surfaced as "-" in repro stats),
        # never nan or an exception.
        assert Histogram(buckets=(1,)).quantile(0.5) is None
        assert Histogram(buckets=(1,)).quantile(0.0) is None

    def test_empty_family_summary_has_none_mean(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat_e", buckets=(1,), labelnames=("a",))
        fam.labels(a="x")  # child exists, zero observations
        summary = reg.quantiles("lat_e")['a="x"']
        assert summary["count"] == 0.0
        assert summary["mean"] is None
        assert summary["p50"] is None

    def test_out_of_range_rejected(self):
        h = Histogram(buckets=(1,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)


class TestRegistryQuantiles:
    def test_summary_shape(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat", buckets=(1, 2, 4), labelnames=("algorithm",))
        child = fam.labels(algorithm="luby")
        for v in (0.5, 1.5, 3.0):
            child.observe(v)
        out = reg.quantiles("lat")
        summary = out['algorithm="luby"']
        assert summary["count"] == 3.0
        assert summary["mean"] == pytest.approx(5.0 / 3.0)
        assert set(summary) == {"count", "mean", "p50", "p95", "p99"}
        assert 0.0 < summary["p50"] <= summary["p95"] <= summary["p99"] <= 4.0

    def test_missing_or_wrong_kind_empty(self):
        reg = MetricsRegistry()
        assert reg.quantiles("nope") == {}
        reg.counter("c").inc()
        assert reg.quantiles("c") == {}

    def test_family_quantile_unlabeled(self):
        reg = MetricsRegistry()
        fam = reg.histogram("h", buckets=(2, 4))
        fam.observe(1.0)
        assert 0.0 < fam.quantile(0.5) <= 2.0


class TestAggregatedQuantiles:
    def _fleet(self):
        reg = MetricsRegistry()
        fam = reg.histogram(
            "lat", buckets=(1, 2, 4), labelnames=("algorithm", "worker")
        )
        fam.labels(algorithm="luby", worker="0").observe(0.5)
        fam.labels(algorithm="luby", worker="1").observe(1.5)
        fam.labels(algorithm="luby", worker="1").observe(3.0)
        fam.labels(algorithm="fair", worker="0").observe(0.5)
        return reg

    def test_drops_worker_dimension(self):
        out = self._fleet().aggregated_quantiles("lat")
        assert set(out) == {'algorithm="luby"', 'algorithm="fair"'}
        luby = out['algorithm="luby"']
        # Both workers' observations land in one merged histogram.
        assert luby["count"] == 3.0
        assert luby["mean"] == pytest.approx(5.0 / 3.0)
        assert 0.0 < luby["p50"] <= luby["p95"] <= luby["p99"] <= 4.0

    def test_drop_all_labels_collapses_to_fleet(self):
        out = self._fleet().aggregated_quantiles(
            "lat", drop_labels=("worker", "algorithm")
        )
        assert set(out) == {""}
        assert out[""]["count"] == 4.0

    def test_custom_qs_name_mangling(self):
        out = self._fleet().aggregated_quantiles(
            "lat", qs=(0.5, 0.999), drop_labels=("worker", "algorithm")
        )
        assert set(out[""]) == {"count", "mean", "p50", "p99_9"}

    def test_missing_or_wrong_kind_empty(self):
        reg = MetricsRegistry()
        assert reg.aggregated_quantiles("nope") == {}
        reg.counter("c").inc()
        assert reg.aggregated_quantiles("c") == {}

    def test_matches_plain_quantiles_when_nothing_dropped(self):
        reg = self._fleet()
        merged = reg.aggregated_quantiles("lat", drop_labels=())
        plain = reg.quantiles("lat")
        assert set(merged) == set(plain)
        for key in plain:
            assert merged[key]["count"] == plain[key]["count"]
