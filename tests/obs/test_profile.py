"""Unit + integration tests for the engine phase profiler."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    PhaseProfiler,
    current_profiler,
    phase,
    use_profiler,
)


class TestBinding:
    def test_unbound_by_default(self):
        assert current_profiler() is None

    def test_phase_is_noop_when_unbound(self):
        with phase("anything"):
            pass  # must not raise and must record nowhere

    def test_use_profiler_binds_and_restores(self):
        with use_profiler() as prof:
            assert current_profiler() is prof
        assert current_profiler() is None

    def test_explicit_profiler_accepted(self):
        mine = PhaseProfiler()
        with use_profiler(mine) as prof:
            assert prof is mine

    def test_nesting_restores_outer(self):
        with use_profiler() as outer:
            with use_profiler() as inner:
                assert current_profiler() is inner
            assert current_profiler() is outer


class TestRecording:
    def test_phase_aggregates_calls(self):
        with use_profiler() as prof:
            for _ in range(3):
                with phase("work"):
                    pass
        report = prof.report()
        assert report["phases"]["work"]["calls"] == 3
        assert report["phases"]["work"]["total_s"] >= 0.0
        assert report["phases"]["work"]["mean_ms"] >= 0.0

    def test_record_round_tracks_max(self):
        prof = PhaseProfiler()
        prof.record_round("r", 0.010)
        prof.record_round("r", 0.030)
        rounds = prof.report()["rounds"]["r"]
        assert rounds["rounds"] == 2
        assert rounds["max_ms"] == pytest.approx(30.0)
        assert rounds["mean_ms"] == pytest.approx(20.0)

    def test_counts(self):
        prof = PhaseProfiler()
        prof.count("k")
        prof.count("k", 4)
        assert prof.report()["counts"]["k"] == 5

    def test_reset(self):
        prof = PhaseProfiler()
        prof.add_phase("p", 0.01)
        prof.reset()
        assert prof.report() == {"phases": {}, "rounds": {}, "counts": {}}

    def test_exception_still_recorded(self):
        with use_profiler() as prof:
            with pytest.raises(RuntimeError):
                with phase("boom"):
                    raise RuntimeError("boom")
        assert prof.report()["phases"]["boom"]["calls"] == 1

    def test_flush_to_registry(self):
        reg = MetricsRegistry()
        prof = PhaseProfiler()
        prof.add_phase("stage1", 0.002)
        prof.record_round("round", 0.001)
        prof.flush_to_registry(reg)
        snap = reg.snapshot()
        assert 'phase="stage1"' in snap["histograms"]["engine_phase_seconds"]
        assert 'phase="round"' in snap["histograms"]["engine_round_seconds"]

    def test_emit_spans_mode_records(self):
        with use_profiler(PhaseProfiler(emit_spans=True)) as prof:
            with phase("spanned"):
                pass
        assert prof.report()["phases"]["spanned"]["calls"] == 1


class TestEngineInstrumentation:
    """The fast engines and the faithful runtime feed a bound profiler."""

    def _tree(self, n=30, seed=3):
        from repro.graphs.generators import random_tree

        return random_tree(n, seed=seed).graph

    def test_fast_fair_tree_phases(self):
        from repro.fast.fair_tree import FastFairTree

        with use_profiler() as prof:
            FastFairTree().run(self._tree(), np.random.default_rng(0))
        phases = prof.report()["phases"]
        for name in (
            "fair_tree.stage1_cut",
            "fair_tree.stage2_resolve",
            "fair_tree.stage3_maximalize",
            "fair_tree.stage4_fallback",
            "cfb.election",
            "cfb.bfs",
        ):
            assert name in phases, name

    def test_fast_luby_rounds_match_iterations(self):
        from repro.fast.luby import FastLuby

        with use_profiler() as prof:
            result = FastLuby().run(self._tree(), np.random.default_rng(1))
        rounds = prof.report()["rounds"]["luby.sweep"]
        assert rounds["rounds"] == result.info["iterations"]

    def test_batched_phases(self):
        from repro.fast.batched import batched_luby_trials

        with use_profiler() as prof:
            batched_luby_trials(self._tree(), 8, seed=0, batch=4)
        phases = prof.report()["phases"]
        assert phases["batched.union"]["calls"] == 2
        assert phases["batched.sweep"]["calls"] == 2
        assert phases["batched.fold"]["calls"] == 2

    def test_faithful_network_rounds(self):
        from repro.algorithms.luby import LubyMIS

        with use_profiler() as prof:
            result = LubyMIS().run(self._tree(), np.random.default_rng(2))
        report = prof.report()
        assert report["phases"]["network.run"]["calls"] == 1
        assert report["rounds"]["network.round"]["rounds"] == (
            result.metrics.rounds
        )

    def test_staged_stage_entries_counted(self):
        from repro.algorithms.fair_tree import FairTree

        with use_profiler() as prof:
            FairTree().run(self._tree(), np.random.default_rng(4))
        counts = prof.report()["counts"]
        assert any(k.startswith("staged.stage") for k in counts)

    def test_no_recording_without_binding(self):
        from repro.fast.fair_tree import FastFairTree

        probe = PhaseProfiler()
        FastFairTree().run(self._tree(), np.random.default_rng(0))
        assert probe.report() == {"phases": {}, "rounds": {}, "counts": {}}
        assert current_profiler() is None
