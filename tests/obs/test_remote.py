"""Cross-process telemetry plane: trace propagation, merge, dedup.

The contract under test (see ``repro.obs.remote``):

* trace context survives thread and process hops — the worker-side span
  tree attaches under the dispatching span for ``fork`` and ``spawn``
  alike, and the *structure* of the tree (names and parent edges) is
  identical across start methods;
* worker metric snapshots merge into the parent registry under a
  ``worker`` label, merge-correctly for counters and histograms;
* absorbing the same chunk twice (retried dispatch) is idempotent.
"""

import multiprocessing as mp
import threading

import pytest

from repro.fast.fair_tree import FastFairTree
from repro.graphs.generators import random_tree
from repro.obs.metrics import MetricsRegistry
from repro.obs.remote import (
    ChunkResult,
    RemoteTelemetry,
    TraceContext,
    current_trace_context,
    merge_worker_snapshot,
    run_chunk_with_telemetry,
    telemetry_enabled,
    use_trace,
)
from repro.obs.spans import (
    capture_spans,
    register_span_sink,
    span,
    unregister_span_sink,
)


class TestTraceContext:
    def test_captures_ambient_position(self):
        with span("outer") as s:
            ctx = current_trace_context()
        assert ctx.trace_id == s.trace_id
        assert ctx.span_id == s.span_id

    def test_use_trace_reenters(self):
        ctx = TraceContext(trace_id="t" * 32, span_id="p" * 16)
        records = []
        with capture_spans(records.append):
            with use_trace(ctx):
                with span("child"):
                    pass
        (rec,) = records
        assert rec["trace_id"] == ctx.trace_id
        assert rec["parent_id"] == ctx.span_id

    def test_use_trace_none_clears_inherited_state(self):
        # A fork-started worker inherits the parent's contextvars; an
        # empty context must still rebind so a chunk never attaches to
        # a stale request's tree.
        with span("stale"):
            with use_trace(None):
                ctx = current_trace_context()
                assert ctx.trace_id is None
                assert ctx.span_id is None

    def test_picklable(self):
        import pickle

        ctx = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestThreadPropagation:
    def test_spans_connect_across_threads(self):
        records = []
        with capture_spans(records.append):
            with span("parent") as parent:
                ctx = current_trace_context()

                def work():
                    with use_trace(ctx):
                        with span("thread.op"):
                            pass

                t = threading.Thread(target=work)
                t.start()
                t.join()
        by_name = {r["name"]: r for r in records}
        assert by_name["thread.op"]["trace_id"] == parent.trace_id
        assert by_name["thread.op"]["parent_id"] == parent.span_id


def _span_tree_structure(records, root_parent_id):
    """Records → sorted (name, parent-name) edges, IDs abstracted away.

    Span IDs are random, so cross-run comparison must be structural:
    an edge names the span and its parent's *name* (or ``<root>`` for
    spans hanging off the ambient position the chunk was shipped with).
    """
    names = {r["span_id"]: r["name"] for r in records}
    edges = []
    for r in records:
        parent = r.get("parent_id")
        if parent == root_parent_id:
            edges.append((r["name"], "<root>"))
        else:
            edges.append((r["name"], names.get(parent, "<orphan>")))
    return sorted(edges)


def _chunk_span_tree(start_method):
    """Run one telemetry-carrying chunk on a 2-worker pool; return
    (structure, merged_count, worker_labels)."""
    from repro.analysis.montecarlo import TrialPool
    from repro.obs.metrics import parse_label_key
    from repro.runtime.rng import spawn_trial_seeds

    graph = random_tree(40, seed=5).graph
    registry = MetricsRegistry()
    telemetry = RemoteTelemetry(registry)
    collected = []
    register_span_sink(collected.append)
    try:
        pool = TrialPool(
            FastFairTree(),
            graph,
            workers=2,
            context=start_method,
            telemetry=telemetry,
        )
        try:
            with span("test.root") as root:
                pool.run_chunk(spawn_trial_seeds(0, 6))
                root_span_id = root.span_id
        finally:
            pool.close()
    finally:
        unregister_span_sink(collected.append)

    worker_records = [r for r in collected if r["name"] != "test.root"]
    structure = _span_tree_structure(worker_records, root_span_id)
    merged = registry.counter("telemetry_chunks_merged_total").value
    chunk_hist = registry.snapshot()["histograms"].get(
        "worker_chunk_seconds", {}
    )
    workers = {parse_label_key(k).get("worker") for k in chunk_hist}
    return structure, merged, workers


@pytest.mark.skipif(
    not telemetry_enabled(), reason="REPRO_TELEMETRY disabled in environment"
)
class TestProcessPropagation:
    @pytest.mark.skipif(
        "fork" not in mp.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_fork_chunk_attaches_under_dispatch_span(self):
        structure, merged, workers = _chunk_span_tree("fork")
        assert ("pool.chunk", "<root>") in structure
        assert ("<orphan>",) not in {(p,) for _n, p in structure}
        assert merged == 1
        assert any(w and w.startswith("pid:") for w in workers)

    @pytest.mark.skipif(
        "spawn" not in mp.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_chunk_attaches_under_dispatch_span(self):
        structure, merged, _workers = _chunk_span_tree("spawn")
        assert ("pool.chunk", "<root>") in structure
        assert merged == 1

    @pytest.mark.skipif(
        "fork" not in mp.get_all_start_methods()
        or "spawn" not in mp.get_all_start_methods(),
        reason="need both fork and spawn",
    )
    def test_fork_and_spawn_trees_structurally_identical(self):
        # Span IDs are random per process, so "bit-identical" means the
        # (name → parent-name) edge multiset: same spans, same shape.
        fork_tree, _, _ = _chunk_span_tree("fork")
        spawn_tree, _, _ = _chunk_span_tree("spawn")
        assert fork_tree == spawn_tree


class TestWorkerHarness:
    def test_returns_value_and_delta_snapshot(self):
        result = run_chunk_with_telemetry(
            lambda: 41 + 1,
            TraceContext(),
            "chunk-a",
            algorithm="alg",
            trials=5,
        )
        assert result.value == 42
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.chunk_id == "chunk-a"
        assert telemetry.worker.startswith("pid:")
        counters = telemetry.metrics["counters"]
        assert counters["worker_trials_total"]['algorithm="alg"'] == 5.0
        names = [r["name"] for r in telemetry.spans]
        assert "pool.chunk" in names

    def test_disabled_plane_ships_bare_result(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not telemetry_enabled()
        result = run_chunk_with_telemetry(
            lambda: 7, TraceContext(), "chunk-b", algorithm="alg", trials=1
        )
        assert result.value == 7
        assert result.telemetry is None

    def test_worker_spans_isolated_from_parent_sinks(self):
        # capture_spans REPLACES the sink list inside the harness: a
        # fork-inherited parent sink must not receive worker spans
        # directly (they arrive exactly once, via absorb).
        leaked = []
        register_span_sink(leaked.append)
        try:
            run_chunk_with_telemetry(
                lambda: None, TraceContext(), "chunk-c", algorithm="a"
            )
        finally:
            unregister_span_sink(leaked.append)
        assert leaked == []


class TestMergeSnapshot:
    def _snapshot(self):
        return {
            "counters": {"jobs_total": {'kind="a"': 3.0}},
            "gauges": {"depth": {"": 2.0}},
            "histograms": {
                "lat": {
                    'kind="a"': {
                        "count": 2,
                        "sum": 3.0,
                        "buckets": {"1": 1, "2": 2, "+Inf": 2},
                    }
                }
            },
        }

    def test_merges_under_worker_label(self):
        reg = MetricsRegistry()
        merge_worker_snapshot(reg, self._snapshot(), "pid:1")
        merge_worker_snapshot(reg, self._snapshot(), "pid:1")
        merge_worker_snapshot(reg, self._snapshot(), "pid:2")
        snap = reg.snapshot()
        counters = snap["counters"]["jobs_total"]
        assert counters['kind="a",worker="pid:1"'] == 6.0
        assert counters['kind="a",worker="pid:2"'] == 3.0
        hist = snap["histograms"]["lat"]['kind="a",worker="pid:1"']
        assert hist["count"] == 4
        assert hist["sum"] == 6.0
        assert hist["buckets"] == {"1": 2, "2": 4, "+Inf": 4}
        # gauges adopt the reported value rather than adding
        assert snap["gauges"]["depth"]['worker="pid:1"'] == 2.0

    def test_label_conflict_falls_back_to_prefixed_family(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(9)  # unlabeled resident family
        merge_worker_snapshot(reg, self._snapshot(), "pid:1")
        snap = reg.snapshot()
        assert snap["counters"]["jobs_total"][""] == 9.0
        assert (
            snap["counters"]["worker_jobs_total"]['kind="a",worker="pid:1"']
            == 3.0
        )


class TestAbsorbIdempotence:
    def test_duplicate_chunk_merges_once(self):
        reg = MetricsRegistry()
        tel = RemoteTelemetry(reg)
        result = run_chunk_with_telemetry(
            lambda: 11, TraceContext(), "chunk-r", algorithm="alg", trials=8
        )
        assert tel.absorb(result) == 11
        # a retried dispatch delivers the same chunk again — possibly as
        # a distinct (re-executed) result object with the same chunk ID
        retry = run_chunk_with_telemetry(
            lambda: 11, TraceContext(), "chunk-r", algorithm="alg", trials=8
        )
        assert tel.absorb(result) == 11
        assert tel.absorb(retry) == 11

        snap = reg.snapshot()
        trials = snap["counters"]["worker_trials_total"]
        assert sum(trials.values()) == 8.0  # merged exactly once
        assert reg.counter("telemetry_chunks_merged_total").value == 1.0
        assert reg.counter("telemetry_chunks_duplicate_total").value == 2.0

    def test_bare_values_pass_through(self):
        tel = RemoteTelemetry(MetricsRegistry())
        payload = object()
        assert tel.absorb(payload) is payload
        assert tel.absorb(ChunkResult(5)) == 5

    def test_malformed_telemetry_still_returns_value(self):
        from repro.obs.remote import ChunkTelemetry

        reg = MetricsRegistry()
        tel = RemoteTelemetry(reg)
        bad = ChunkResult(
            3, ChunkTelemetry("chunk-x", "pid:9", {"histograms": {"h": {"": "garbage"}}})
        )
        assert tel.absorb(bad) == 3
