"""Unit tests for trace/span context management."""

import io
import json

import pytest

from repro.obs.logging import configure_logging, disable_logging
from repro.obs.metrics import (
    MetricsRegistry,
    set_enabled,
    use_registry,
)
from repro.obs.spans import (
    bind_trace,
    current_span_id,
    current_trace_id,
    new_span_id,
    new_trace_id,
    span,
)


@pytest.fixture(autouse=True)
def _restore():
    yield
    disable_logging()
    set_enabled(True)


class TestIds:
    def test_fresh_and_distinct(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16

    def test_no_ambient_ids_by_default(self):
        assert current_trace_id() is None
        assert current_span_id() is None


class TestBindTrace:
    def test_binds_and_restores(self):
        with bind_trace("t1", "s1"):
            assert current_trace_id() == "t1"
            assert current_span_id() == "s1"
        assert current_trace_id() is None
        assert current_span_id() is None


class TestSpan:
    def test_nesting_links_parents(self):
        with span("outer") as outer:
            assert current_trace_id() == outer.trace_id
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert current_span_id() == outer.span_id
        assert outer.parent_id is None
        assert outer.duration_s is not None and outer.duration_s >= 0

    def test_span_continues_bound_trace(self):
        with bind_trace("t-fixed", "s-parent"):
            with span("child") as s:
                assert s.trace_id == "t-fixed"
                assert s.parent_id == "s-parent"

    def test_span_logs_completion_event(self):
        buf = io.StringIO()
        configure_logging(stream=buf, level="debug")
        with span("phase", items=3) as s:
            s.annotate(extra="yes")
        (rec,) = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert rec["event"] == "span"
        assert rec["span"] == "phase"
        assert rec["items"] == 3
        assert rec["extra"] == "yes"
        assert rec["trace_id"] == s.trace_id
        assert rec["span_id"] == s.span_id
        assert rec["duration_ms"] >= 0

    def test_span_observes_duration_histogram(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("timed"):
                pass
        snap = reg.snapshot()
        assert (
            snap["histograms"]["obs_span_duration_seconds"]['span="timed"'][
                "count"
            ]
            == 1
        )

    def test_disabled_spans_are_inert(self):
        reg = MetricsRegistry()
        set_enabled(False)
        with use_registry(reg):
            with span("ghost") as s:
                assert s.trace_id is None
                assert current_trace_id() is None
        assert reg.snapshot()["histograms"] == {}

    def test_exception_still_closes_span(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
        assert current_span_id() is None
        snap = reg.snapshot()
        assert (
            snap["histograms"]["obs_span_duration_seconds"]['span="boom"'][
                "count"
            ]
            == 1
        )
