"""Property-based tests for the on-disk pipeline (hypothesis).

Any simple graph must survive ``save_reprograph`` → memmap
``load_reprograph`` → (when available) ``SharedGraph`` export/attach
with identical content, pre-materialized CSR, and behavior parity —
the full zero-copy chain a million-node workload rides.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import StaticGraph, load_reprograph, save_reprograph
from repro.graphs.snap import load_snap_edgelist


@st.composite
def edge_lists(draw, max_n=12):
    """Random simple graphs as (n, edge set)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return n, edges


class TestReprographProperties:
    @given(edge_lists(), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_identity(self, tmp_path_factory, ne, compact):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        path = tmp_path_factory.mktemp("rg") / "g.reprograph"
        save_reprograph(path, g, compact=compact)
        g2 = load_reprograph(path, verify=True)
        assert g2 == g
        assert g2.content_hash() == g.content_hash()
        assert "_csr" in g2.__dict__
        indptr, indices = g2._csr
        ref_ptr, ref_idx = g._csr
        assert np.array_equal(indptr, ref_ptr)
        assert np.array_equal(indices, ref_idx)
        for v in range(min(n, 4)):
            assert np.array_equal(g2.neighbors(v), g.neighbors(v))

    @given(edge_lists())
    @settings(max_examples=25, deadline=None)
    def test_shared_export_of_memmap_load(self, tmp_path_factory, ne):
        from repro.graphs import shm_enabled
        from repro.graphs.shm import (
            ShmUnavailable,
            attach_graph,
            detach_all,
            export_graph,
        )

        if not shm_enabled():
            return  # skip silently: property runs per-example
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        path = tmp_path_factory.mktemp("rg") / "g.reprograph"
        save_reprograph(path, g)
        loaded = load_reprograph(path)
        try:
            shared = export_graph(loaded)
        except ShmUnavailable:
            return
        try:
            attached = attach_graph(shared.handle)
            assert attached == g
            assert attached.content_hash() == g.content_hash()
        finally:
            detach_all()
            shared.close()


class TestSnapProperties:
    @given(edge_lists(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_snap_render_parse_identity(self, tmp_path_factory, ne, chunk_bytes):
        """Rendering any graph as a SNAP file (both directions, comment
        noise) and re-parsing it at an arbitrary chunk size is lossless."""
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        lines = ["# rendered by test"]
        for u, v in g.edges.tolist():
            lines.append(f"{u}\t{v}")
            lines.append(f"{v} {u}")
        path = tmp_path_factory.mktemp("snap") / "g.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        result = load_snap_edgelist(path, chunk_bytes=chunk_bytes)
        if g.m == 0:
            assert result.m == 0
            return
        # compaction keeps only vertices that appear in some edge
        used = np.unique(g.edges)
        assert result.node_ids is not None
        assert result.node_ids.tolist() == used.tolist()
        relabel = {int(old): i for i, old in enumerate(used)}
        expected = StaticGraph.from_edges(
            len(used),
            [(relabel[int(u)], relabel[int(v)]) for u, v in g.edges.tolist()],
        )
        assert result.graph.content_hash() == expected.content_hash()
