"""Property-based tests for the exact layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_maximal_independent_set
from repro.exact.enumerate import maximal_independent_sets, mis_membership_matrix
from repro.exact.optimal import optimal_inequality
from repro.fast.luby import FastLuby
from repro.graphs import StaticGraph


@st.composite
def graphs(draw, max_n=9):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return StaticGraph.from_edges(n, edges)


@st.composite
def trees(draw, max_n=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = []
    for v in range(1, n):
        p = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((p, v))
    return StaticGraph.from_edges(n, edges)


class TestEnumerationProperties:
    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_every_enumerated_set_is_valid(self, g):
        for s in maximal_independent_sets(g):
            member = np.zeros(g.n, dtype=bool)
            member[list(s)] = True
            assert is_maximal_independent_set(g, member)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_sets_are_distinct(self, g):
        sets = list(maximal_independent_sets(g))
        assert len(sets) == len(set(sets))

    @given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_algorithm_output_is_enumerated(self, g, seed):
        """Any run of any (correct) algorithm must land in the enumerated
        family — connects Monte-Carlo engines to the exact layer."""
        member = FastLuby().run(g, np.random.default_rng(seed)).membership
        s = frozenset(np.nonzero(member)[0].tolist())
        assert s in set(maximal_independent_sets(g))

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_every_vertex_in_some_set(self, g):
        """Each vertex belongs to at least one maximal independent set
        (greedy: start from that vertex)."""
        mat = mis_membership_matrix(g)
        assert mat.any(axis=0).all()


class TestOptimalProperties:
    @given(trees(max_n=8))
    @settings(max_examples=15, deadline=None)
    def test_trees_admit_perfect_fairness(self, g):
        assert optimal_inequality(g).inequality <= 1.001

    @given(graphs(max_n=7))
    @settings(max_examples=15, deadline=None)
    def test_optimal_at_least_one(self, g):
        res = optimal_inequality(g)
        assert res.inequality >= 1.0 - 1e-9
        # distribution is a valid probability vector
        assert res.distribution.min() >= -1e-9
        np.testing.assert_allclose(res.distribution.sum(), 1.0, atol=1e-6)
