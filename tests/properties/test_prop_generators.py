"""Generator rewrites vs slow tuple-path references.

The hot generators emit endpoint arrays straight into
``StaticGraph.from_arrays``; these sweeps pin their ``content_hash``
against independently-written pure-Python reference builders (nested
loops feeding ``from_edges`` with a list of tuples — the pre-array
construction idiom).  A mismatch anywhere in the parameter grid means
the vectorized emission changed graph *content*, not just speed.

Seeded families (random_tree, random_bipartite, random_planar_like)
cannot be re-derived without replaying RNG consumption order, so they
are checked structurally instead, plus a scrambled tuple round-trip:
feeding each graph's own edges back through the slow path — shuffled
and endpoint-swapped — must re-canonicalize to the identical hash.
"""

import numpy as np
import pytest

from repro.graphs import StaticGraph
from repro.graphs.generators import (
    apex_grid,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_bipartite,
    random_planar_like,
    random_tree,
    star_graph,
    triangulated_grid,
)


def _ref_path(n):
    return StaticGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def _ref_cycle(n):
    return StaticGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def _ref_star(n):
    return StaticGraph.from_edges(n, [(0, i) for i in range(1, n)])


def _ref_complete(n):
    return StaticGraph.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def _ref_complete_bipartite(a, b):
    return StaticGraph.from_edges(
        a + b, [(i, a + j) for i in range(a) for j in range(b)]
    )


def _grid_tuples(rows, cols, diagonal=False):
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
            if diagonal and c + 1 < cols and r + 1 < rows:
                edges.append((v, v + cols + 1))
    return edges


def _ref_grid(rows, cols):
    return StaticGraph.from_edges(rows * cols, _grid_tuples(rows, cols))


def _ref_triangulated(rows, cols):
    return StaticGraph.from_edges(
        rows * cols, _grid_tuples(rows, cols, diagonal=True)
    )


def _ref_apex_grid(rows, cols):
    apex = rows * cols
    edges = _grid_tuples(rows, cols)
    for r in range(rows):
        for c in range(cols):
            if r in (0, rows - 1) or c in (0, cols - 1):
                edges.append((r * cols + c, apex))
    return StaticGraph.from_edges(apex + 1, edges)


class TestDeterministicFamilies:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 40, 201])
    def test_path(self, n):
        assert path_graph(n).content_hash() == _ref_path(n).content_hash()

    @pytest.mark.parametrize("n", [3, 4, 5, 17, 100])
    def test_cycle(self, n):
        assert cycle_graph(n).content_hash() == _ref_cycle(n).content_hash()

    @pytest.mark.parametrize("n", [1, 2, 3, 9, 64])
    def test_star(self, n):
        assert star_graph(n).content_hash() == _ref_star(n).content_hash()

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 25])
    def test_complete(self, n):
        assert (
            complete_graph(n).content_hash() == _ref_complete(n).content_hash()
        )

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 2), (10, 10)])
    def test_complete_bipartite(self, a, b):
        assert (
            complete_bipartite(a, b).content_hash()
            == _ref_complete_bipartite(a, b).content_hash()
        )

    @pytest.mark.parametrize(
        "rows,cols", [(1, 1), (1, 9), (9, 1), (2, 2), (5, 8), (13, 7)]
    )
    def test_grid(self, rows, cols):
        assert (
            grid_graph(rows, cols).content_hash()
            == _ref_grid(rows, cols).content_hash()
        )

    @pytest.mark.parametrize(
        "rows,cols", [(1, 1), (1, 6), (6, 1), (2, 2), (4, 9), (11, 5)]
    )
    def test_triangulated_grid(self, rows, cols):
        assert (
            triangulated_grid(rows, cols).content_hash()
            == _ref_triangulated(rows, cols).content_hash()
        )

    @pytest.mark.parametrize(
        "rows,cols", [(1, 1), (1, 5), (5, 1), (2, 2), (3, 3), (6, 9)]
    )
    def test_apex_grid(self, rows, cols):
        assert (
            apex_grid(rows, cols).content_hash()
            == _ref_apex_grid(rows, cols).content_hash()
        )


def _scramble_round_trip(graph, seed):
    """Shuffle + endpoint-swap the canonical edges, rebuild via the slow
    tuple path; canonicalization must restore the identical content."""
    scrambled = [(int(v), int(u)) for u, v in graph.edges.tolist()]
    np.random.default_rng(seed).shuffle(scrambled)
    rebuilt = StaticGraph.from_edges(graph.n, scrambled)
    assert rebuilt.content_hash() == graph.content_hash()


class TestSeededFamilies:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 77])
    @pytest.mark.parametrize("seed", [0, 1, 12345])
    def test_random_tree_structure(self, n, seed):
        t = random_tree(n, seed=seed)
        assert t.graph.is_tree()
        assert int((t.parent < 0).sum()) == 1
        # every non-root's parent link is a graph edge
        for v in range(n):
            p = int(t.parent[v])
            if p >= 0:
                assert t.graph.has_edge(v, p)
        _scramble_round_trip(t.graph, seed)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_random_tree_deterministic(self, seed):
        a = random_tree(50, seed=seed)
        b = random_tree(50, seed=seed)
        assert a.graph.content_hash() == b.graph.content_hash()
        assert np.array_equal(a.parent, b.parent)

    @pytest.mark.parametrize("a,b,p", [(4, 6, 0.0), (5, 5, 0.4), (8, 3, 1.0)])
    def test_random_bipartite_structure(self, a, b, p):
        g = random_bipartite(a, b, p, seed=3)
        assert g.n == a + b
        assert g.is_bipartite()
        # all edges cross the parts
        if g.m:
            lo = g.edges[:, 0]
            hi = g.edges[:, 1]
            assert bool(np.all(lo < a)) and bool(np.all(hi >= a))
        if p == 1.0:
            assert g.m == a * b
        if p == 0.0:
            assert g.m == 0
        _scramble_round_trip(g, 3)

    @pytest.mark.parametrize("n", [3, 10, 40])
    def test_random_planar_like_structure(self, n):
        g = random_planar_like(n, seed=5)
        assert g.n == n
        assert g.m <= 3 * n - 6 or n < 3  # planar edge bound
        _scramble_round_trip(g, 5)
