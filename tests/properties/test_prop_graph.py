"""Property-based tests for the graph layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import RootedTree, StaticGraph


@st.composite
def edge_lists(draw, max_n=12):
    """Random simple graphs as (n, edge set)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return n, edges


@st.composite
def trees(draw, max_n=14):
    """Uniform-ish random labeled trees via random parent attachment."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = []
    for v in range(1, n):
        p = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((p, v))
    return n, edges


class TestStaticGraphProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        assert int(g.degrees.sum()) == 2 * g.m

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetrized_arrays_consistent(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        assert len(g.edge_src) == len(g.edge_dst) == 2 * g.m
        forward = set(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
        assert all((b, a) in forward for a, b in forward)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_component_count_bounds(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        count, labels = g.connected_components()
        assert 1 <= count <= n or n == 0
        assert count >= n - g.m  # each edge merges at most one pair

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_bipartition_is_proper_when_found(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        colors = g.bipartition()
        if colors is not None and g.m:
            assert not np.any(colors[g.edge_src] == colors[g.edge_dst])

    @given(edge_lists(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_subgraph_mask_never_adds_edges(self, ne, seed):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        keep = np.random.default_rng(seed).random(n) < 0.5
        sub = g.subgraph_mask(keep)
        assert sub.m <= g.m
        for u, v in map(tuple, sub.edges.tolist()):
            assert keep[u] and keep[v]

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_trees_detected(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        assert g.is_tree()
        assert g.is_forest()
        assert g.is_bipartite()

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_tree_bfs_levels_adjacent_differ_by_one(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        levels = g.bfs_levels([0])
        for u, v in map(tuple, g.edges.tolist()):
            assert abs(int(levels[u]) - int(levels[v])) == 1


class TestRootedTreeProperties:
    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_from_graph_orients_every_edge(self, ne):
        n, edges = ne
        g = StaticGraph.from_edges(n, edges)
        t = RootedTree.from_graph(g)
        assert (t.parent < 0).sum() == 1  # connected tree: single root
        # depth decreases by exactly one toward the parent
        for v in range(n):
            p = int(t.parent[v])
            if p >= 0:
                assert t.depth[v] == t.depth[p] + 1
