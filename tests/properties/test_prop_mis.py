"""Property-based tests: every algorithm always produces a valid MIS.

Section III requires independence and maximality to hold on *every*
execution, unconditionally.  Hypothesis drives random graphs (from each
algorithm's target family) and random seeds through every engine.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_maximal_independent_set
from repro.fast.blocks import FastColorMIS, FastFairBipart
from repro.fast.fair_rooted import FastFairRooted
from repro.fast.fair_tree import FastFairTree
from repro.fast.luby import FastLuby
from repro.graphs import StaticGraph


@st.composite
def trees(draw, max_n=20):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = []
    for v in range(1, n):
        p = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((p, v))
    return StaticGraph.from_edges(n, edges)


@st.composite
def graphs(draw, max_n=14):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return StaticGraph.from_edges(n, edges)


seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestAlwaysValidMIS:
    @given(graphs(), seeds)
    @settings(max_examples=60, deadline=None)
    def test_fast_luby_priority(self, g, seed):
        member = FastLuby().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(graphs(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_fast_luby_degree(self, g, seed):
        member = FastLuby("degree").run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(graphs(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_fast_fair_tree_on_any_graph(self, g, seed):
        """FAIRTREE's fairness needs trees, but its output must be a valid
        MIS on arbitrary graphs thanks to the fix + fallback stages."""
        member = FastFairTree().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(trees(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_fast_fair_rooted_on_trees(self, g, seed):
        member = FastFairRooted().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(graphs(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_fast_fair_bipart_on_any_graph(self, g, seed):
        member = FastFairBipart().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(graphs(), seeds)
    @settings(max_examples=30, deadline=None)
    def test_fast_color_mis_on_any_graph(self, g, seed):
        member = FastColorMIS().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(trees(max_n=10), seeds)
    @settings(max_examples=15, deadline=None)
    def test_faithful_fair_tree(self, g, seed):
        from repro.algorithms.fair_tree import FairTree

        member = FairTree().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(trees(max_n=12), seeds)
    @settings(max_examples=15, deadline=None)
    def test_faithful_luby(self, g, seed):
        from repro.algorithms.luby import LubyMIS

        member = LubyMIS().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(trees(max_n=12), seeds)
    @settings(max_examples=10, deadline=None)
    def test_faithful_fair_rooted(self, g, seed):
        from repro.algorithms.fair_rooted import FairRooted

        member = FairRooted().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)

    @given(trees(max_n=10), seeds)
    @settings(max_examples=10, deadline=None)
    def test_faithful_cole_vishkin(self, g, seed):
        from repro.algorithms.cole_vishkin import ColeVishkinMIS

        member = ColeVishkinMIS().run(g, np.random.default_rng(seed)).membership
        assert is_maximal_independent_set(g, member)
