"""Property-based tests for the runtime's slot accounting and CV math."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cole_vishkin import CVEngine, cv_reduction_iterations
from repro.runtime import slot_cost


payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=6),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
    ),
    max_leaves=12,
)


class TestSlotCostProperties:
    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_non_negative(self, payload):
        assert slot_cost(payload) >= 0

    @given(st.lists(st.integers(), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_list_cost_is_length(self, xs):
        assert slot_cost(xs) == len(xs)

    @given(payloads, payloads)
    @settings(max_examples=60, deadline=None)
    def test_concatenation_additive(self, a, b):
        assert slot_cost([a, b]) == slot_cost(a) + slot_cost(b)


class TestCVReduceProperties:
    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**30),
    )
    @settings(max_examples=200, deadline=None)
    def test_distinct_inputs_give_distinct_outputs(self, a, b):
        if a == b:
            return
        assert CVEngine._reduce(a, b) != CVEngine._reduce(b, a)

    @given(st.integers(min_value=1, max_value=2**62))
    @settings(max_examples=100, deadline=None)
    def test_iteration_count_small(self, m):
        assert cv_reduction_iterations(m) <= 6  # log* of anything practical

    @given(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=100, deadline=None)
    def test_reduce_output_bounded(self, a, b):
        if a == b:
            return
        out = CVEngine._reduce(a, b)
        assert 0 <= out <= 2 * 21 + 1
