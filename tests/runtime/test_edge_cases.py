"""Edge-case and failure-injection tests for the runtime layer."""

import numpy as np
import pytest

from repro.graphs import StaticGraph
from repro.graphs.generators import empty_graph, path_graph
from repro.runtime import (
    Message,
    NodeContext,
    NodeProcess,
    NotTerminated,
    SyncNetwork,
    run_mis_protocol,
)


class Immediate(NodeProcess):
    def __init__(self, output):
        self._output = output

    def on_start(self, ctx):
        ctx.terminate(self._output)

    def on_round(self, ctx, inbox):  # pragma: no cover
        pass


class TestEmptyAndTiny:
    def test_empty_graph_runs(self):
        result = SyncNetwork(empty_graph(0)).run(lambda v: Immediate(1), seed=0)
        assert len(result.outputs) == 0
        assert result.metrics.rounds == 0

    def test_single_node(self):
        result = SyncNetwork(empty_graph(1)).run(lambda v: Immediate(1), seed=0)
        assert result.outputs[0] == 1

    def test_all_terminate_on_start(self):
        result = SyncNetwork(path_graph(4)).run(lambda v: Immediate(0), seed=0)
        assert result.metrics.rounds == 0


class TestOutputs:
    def test_mis_membership_rejects_non_binary(self):
        result = SyncNetwork(empty_graph(2)).run(
            lambda v: Immediate("yes"), seed=0
        )
        with pytest.raises(ValueError):
            result.mis_membership()

    def test_run_mis_protocol_rejects_unfinished(self):
        class Never(NodeProcess):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                pass

        from repro.runtime import RoundLimitExceeded

        with pytest.raises(RoundLimitExceeded):
            run_mis_protocol(
                path_graph(3), lambda v: Never(), seed=0, max_rounds=3
            )

    def test_bool_outputs_accepted(self):
        result = SyncNetwork(empty_graph(2)).run(
            lambda v: Immediate(True), seed=0
        )
        assert result.mis_membership().all()


class TestFaithfulSlotBudgets:
    """Every faithful algorithm must honor the O(log n)-bit model; the
    engine enforces it, so clean runs are proof of compliance."""

    def test_fair_tree_slots(self, rng):
        from repro.algorithms.fair_tree import FairTree

        res = FairTree().run(path_graph(8), rng)
        assert res.metrics.max_slots_per_message <= 8

    def test_color_mis_slots(self, rng):
        from repro.algorithms.color_mis import ColorMIS
        from repro.graphs.generators import grid_graph

        res = ColorMIS().run(grid_graph(3, 3), rng)
        assert res.metrics.max_slots_per_message <= 8

    def test_luby_slots(self, rng):
        from repro.algorithms.luby import LubyMIS

        res = LubyMIS().run(path_graph(6), rng)
        assert res.metrics.max_slots_per_message <= 8

    def test_fair_rooted_slots(self, rng):
        from repro.algorithms.fair_rooted import FairRooted

        res = FairRooted().run(path_graph(6), rng)
        assert res.metrics.max_slots_per_message <= 8

    def test_cntrl_fair_bipart_slots(self, rng):
        from repro.algorithms.cntrl_fair_bipart import CntrlFairBipart

        res = CntrlFairBipart().run(path_graph(6), rng)
        assert res.metrics.max_slots_per_message <= 8


class TestContextIsolation:
    def test_contexts_do_not_share_rng(self):
        draws = {}

        class Draw(NodeProcess):
            def on_start(self, ctx):
                draws[ctx.node_id] = int(ctx.rng.integers(0, 2**31))
                ctx.terminate(0)

            def on_round(self, ctx, inbox):  # pragma: no cover
                pass

        SyncNetwork(empty_graph(6)).run(lambda v: Draw(), seed=0)
        assert len(set(draws.values())) == 6

    def test_neighbor_tuple_immutable(self):
        ctx = NodeContext(0, [1, 2], 3, np.random.default_rng(0))
        assert isinstance(ctx.neighbor_ids, tuple)


class TestDisconnectedGraphs:
    def test_luby_on_forest(self, rng):
        from repro.algorithms.luby import LubyMIS
        from repro.analysis import is_maximal_independent_set

        g = StaticGraph.from_edges(7, [(0, 1), (2, 3), (3, 4)])
        res = LubyMIS().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_fair_tree_on_forest(self, rng):
        from repro.algorithms.fair_tree import FairTree
        from repro.analysis import is_maximal_independent_set

        g = StaticGraph.from_edges(6, [(0, 1), (3, 4)])
        res = FairTree().run(g, rng)
        assert is_maximal_independent_set(g, res.membership)

    def test_fast_fair_tree_on_forest(self, rng):
        from repro.fast.fair_tree import FastFairTree

        g = StaticGraph.from_edges(9, [(0, 1), (1, 2), (4, 5), (7, 8)])
        FastFairTree(validate=True).run(g, rng)
