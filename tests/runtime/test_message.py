"""Unit tests for the slot-based message size model."""

import pytest

from repro.runtime import Message, slot_cost


class TestSlotCost:
    def test_none_is_free(self):
        assert slot_cost(None) == 0

    def test_int_costs_one(self):
        assert slot_cost(7) == 1

    def test_bool_costs_one(self):
        assert slot_cost(True) == 1

    def test_float_costs_one(self):
        assert slot_cost(0.5) == 1

    def test_string_tag_costs_one(self):
        assert slot_cost("prio") == 1

    def test_flat_list(self):
        assert slot_cost([1, 2, 3]) == 3

    def test_nested_list(self):
        assert slot_cost([[1, 2], [3]]) == 3

    def test_dict_keys_are_free(self):
        assert slot_cost({"type": "prio", "value": 42}) == 2

    def test_dict_with_list_value(self):
        assert slot_cost({"type": "cb", "entries": [1, 2, 3, 4, 5, 6]}) == 7

    def test_empty_containers(self):
        assert slot_cost([]) == 0
        assert slot_cost({}) == 0

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            slot_cost(object())

    def test_unsupported_nested_type_raises(self):
        with pytest.raises(TypeError):
            slot_cost({"x": object()})


class TestMessage:
    def test_slots_property(self):
        msg = Message(sender=3, payload={"type": "tag", "bit": 1})
        assert msg.slots == 2

    def test_frozen(self):
        msg = Message(sender=1, payload=None)
        with pytest.raises(AttributeError):
            msg.sender = 2

    def test_sender_preserved(self):
        assert Message(sender=9, payload=0).sender == 9
