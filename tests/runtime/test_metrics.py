"""Unit tests for run metrics."""

from repro.runtime import RunMetrics


class TestRunMetrics:
    def test_record_round_accumulates(self):
        m = RunMetrics()
        m.record_round(1, messages=4, slots=8, active_nodes=3)
        m.record_round(2, messages=2, slots=2, active_nodes=1)
        assert m.rounds == 2
        assert m.total_messages == 6
        assert m.total_slots == 10
        assert len(m.per_round) == 2

    def test_observe_message_tracks_max(self):
        m = RunMetrics()
        m.observe_message(3)
        m.observe_message(7)
        m.observe_message(2)
        assert m.max_slots_per_message == 7

    def test_mean_messages_empty(self):
        assert RunMetrics().mean_messages_per_round == 0.0

    def test_mean_messages(self):
        m = RunMetrics()
        m.record_round(1, messages=4, slots=4, active_nodes=2)
        m.record_round(2, messages=2, slots=2, active_nodes=2)
        assert m.mean_messages_per_round == 3.0

    def test_round_record_fields(self):
        m = RunMetrics()
        m.record_round(1, messages=5, slots=9, active_nodes=4)
        rec = m.per_round[0]
        assert rec.round_index == 1
        assert rec.messages == 5
        assert rec.slots == 9
        assert rec.active_nodes == 4

    def test_record_round_out_of_order_keeps_max(self):
        # Regression: ``rounds`` previously took the *last* recorded index,
        # so out-of-order recording (or a trailing round-0 record) would
        # silently under-count the run.
        m = RunMetrics()
        m.record_round(5, messages=1, slots=1, active_nodes=1)
        m.record_round(3, messages=1, slots=1, active_nodes=1)
        m.record_round(0, messages=0, slots=0, active_nodes=0)
        assert m.rounds == 5
        assert len(m.per_round) == 3


class TestServiceCounters:
    def test_increment_and_snapshot(self):
        from repro.runtime import ServiceCounters

        c = ServiceCounters()
        c.increment("requests")
        c.increment("cache_hits", 3)
        snap = c.snapshot()
        assert snap["requests"] == 1
        assert snap["cache_hits"] == 3
        assert snap["cache_misses"] == 0

    def test_snapshot_is_a_copy(self):
        from repro.runtime import ServiceCounters

        c = ServiceCounters()
        snap = c.snapshot()
        snap["requests"] = 99
        assert c.snapshot()["requests"] == 0

    def test_unknown_counter_rejected(self):
        import pytest

        from repro.runtime import ServiceCounters

        with pytest.raises((AttributeError, KeyError, ValueError)):
            ServiceCounters().increment("bogus_counter")

    def test_unknown_counter_leaves_state_untouched(self):
        # Validate-and-update is atomic: a rejected name must not create
        # a counter or disturb existing totals.
        import pytest

        from repro.runtime import ServiceCounters

        c = ServiceCounters()
        c.increment("requests")
        with pytest.raises(AttributeError):
            c.increment("bogus_counter", 7)
        snap = c.snapshot()
        assert snap["requests"] == 1
        assert "bogus_counter" not in snap

    def test_reset_zeroes_all(self):
        from repro.runtime import ServiceCounters

        c = ServiceCounters()
        c.increment("requests", 5)
        c.increment("trials_executed", 100)
        c.reset()
        assert all(v == 0 for v in c.snapshot().values())

    def test_attribute_reads(self):
        import pytest

        from repro.runtime import ServiceCounters

        c = ServiceCounters()
        c.increment("cache_hits", 2)
        assert c.cache_hits == 2
        assert c.requests == 0
        with pytest.raises(AttributeError):
            c.no_such_counter

    def test_backed_by_registry(self):
        # The shim exposes the same totals through the metrics registry.
        from repro.runtime import ServiceCounters

        c = ServiceCounters()
        c.increment("requests", 3)
        snap = c.registry.snapshot()
        assert snap["counters"]["service_requests_total"][""] == 3.0

    def test_thread_safety(self):
        import threading

        from repro.runtime import ServiceCounters

        c = ServiceCounters()

        def bump():
            for _ in range(1000):
                c.increment("trials_executed")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.snapshot()["trials_executed"] == 4000


class TestRequestRecord:
    def test_throughput(self):
        from repro.runtime import RequestRecord

        rec = RequestRecord(
            request_id="r1",
            algorithm="luby_fast",
            graph_hash="abc",
            trials=100,
            trials_run=100,
            mode="vectorized",
            cached=False,
            coalesced=False,
            latency_s=0.5,
        )
        assert rec.throughput == 200.0

    def test_zero_latency_throughput(self):
        from repro.runtime import RequestRecord

        rec = RequestRecord(
            request_id=None,
            algorithm="luby_fast",
            graph_hash="abc",
            trials=10,
            trials_run=0,
            mode="exact",
            cached=True,
            coalesced=False,
            latency_s=0.0,
        )
        assert rec.throughput == 0.0
