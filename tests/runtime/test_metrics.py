"""Unit tests for run metrics."""

from repro.runtime import RunMetrics


class TestRunMetrics:
    def test_record_round_accumulates(self):
        m = RunMetrics()
        m.record_round(1, messages=4, slots=8, active_nodes=3)
        m.record_round(2, messages=2, slots=2, active_nodes=1)
        assert m.rounds == 2
        assert m.total_messages == 6
        assert m.total_slots == 10
        assert len(m.per_round) == 2

    def test_observe_message_tracks_max(self):
        m = RunMetrics()
        m.observe_message(3)
        m.observe_message(7)
        m.observe_message(2)
        assert m.max_slots_per_message == 7

    def test_mean_messages_empty(self):
        assert RunMetrics().mean_messages_per_round == 0.0

    def test_mean_messages(self):
        m = RunMetrics()
        m.record_round(1, messages=4, slots=4, active_nodes=2)
        m.record_round(2, messages=2, slots=2, active_nodes=2)
        assert m.mean_messages_per_round == 3.0

    def test_round_record_fields(self):
        m = RunMetrics()
        m.record_round(1, messages=5, slots=9, active_nodes=4)
        rec = m.per_round[0]
        assert rec.round_index == 1
        assert rec.messages == 5
        assert rec.slots == 9
        assert rec.active_nodes == 4
