"""Integration tests for the synchronous network engine's semantics."""

import numpy as np
import pytest

from repro.graphs import path_graph, star_graph
from repro.runtime import (
    Message,
    MessageTooLarge,
    NodeContext,
    NodeProcess,
    RoundLimitExceeded,
    SyncNetwork,
    UNBOUNDED_SLOTS,
    UnknownNeighbor,
)


class EchoOnce(NodeProcess):
    """Broadcasts its id once and terminates with what it heard."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast({"type": "id", "value": ctx.node_id})

    def on_round(self, ctx: NodeContext, inbox: list[Message]) -> None:
        heard = sorted(m.payload["value"] for m in inbox)
        ctx.terminate(tuple(heard))


class CountRounds(NodeProcess):
    """Terminates after a fixed number of rounds with the round count."""

    def __init__(self, rounds: int) -> None:
        self._left = rounds

    def on_start(self, ctx: NodeContext) -> None:
        if self._left == 0:
            ctx.terminate(0)

    def on_round(self, ctx: NodeContext, inbox) -> None:
        self._left -= 1
        if self._left <= 0:
            ctx.terminate(ctx.round)


class Never(NodeProcess):
    def on_start(self, ctx) -> None:
        pass

    def on_round(self, ctx, inbox) -> None:
        pass


class TestDelivery:
    def test_messages_arrive_next_round(self, path7):
        result = SyncNetwork(path7).run(lambda v: EchoOnce(), seed=0)
        # internal path nodes hear both neighbors, ends hear one
        assert result.outputs[0] == (1,)
        assert result.outputs[3] == (2, 4)
        assert result.outputs[6] == (5,)

    def test_star_center_hears_all_leaves(self, star9):
        result = SyncNetwork(star9).run(lambda v: EchoOnce(), seed=0)
        assert result.outputs[0] == tuple(range(1, 9))

    def test_leaves_hear_center_only(self, star9):
        result = SyncNetwork(star9).run(lambda v: EchoOnce(), seed=0)
        for leaf in range(1, 9):
            assert result.outputs[leaf] == (0,)

    def test_deterministic_given_seed(self, tree25):
        from repro.algorithms.luby import LubyMIS

        alg = LubyMIS()
        r1 = alg.run(tree25.graph, np.random.default_rng(3))
        r2 = alg.run(tree25.graph, np.random.default_rng(3))
        assert np.array_equal(r1.membership, r2.membership)


class TestRoundAccounting:
    def test_round_counter_reaches_termination(self, path7):
        result = SyncNetwork(path7).run(lambda v: CountRounds(3), seed=0)
        assert all(out == 3 for out in result.outputs)
        assert result.metrics.rounds == 3

    def test_metrics_message_totals(self, star9):
        result = SyncNetwork(star9).run(lambda v: EchoOnce(), seed=0)
        # every vertex broadcasts once: sum of degrees = 2m = 16 messages
        assert result.metrics.total_messages == 16

    def test_per_round_records(self, path7):
        result = SyncNetwork(path7).run(lambda v: EchoOnce(), seed=0)
        # one record per round including the on_start round 0
        assert len(result.metrics.per_round) == result.metrics.rounds + 1

    def test_max_slots_observed(self, path7):
        result = SyncNetwork(path7).run(lambda v: EchoOnce(), seed=0)
        assert result.metrics.max_slots_per_message == 2


class TestLimits:
    def test_round_limit_raises(self, path7):
        with pytest.raises(RoundLimitExceeded):
            SyncNetwork(path7).run(lambda v: Never(), seed=0, max_rounds=5)

    def test_round_limit_soft_mode(self, path7):
        result = SyncNetwork(path7).run(
            lambda v: Never(), seed=0, max_rounds=5, require_termination=False
        )
        assert all(out is None for out in result.outputs)

    def test_slot_limit_enforced(self, path7):
        class Fat(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast({"type": "x", "data": list(range(100))})

            def on_round(self, ctx, inbox):
                ctx.terminate(0)

        with pytest.raises(MessageTooLarge):
            SyncNetwork(path7, slot_limit=8).run(lambda v: Fat(), seed=0)

    def test_unbounded_slots_allows_fat_messages(self, path7):
        class Fat(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast({"type": "x", "data": list(range(100))})

            def on_round(self, ctx, inbox):
                ctx.terminate(len(inbox))

        result = SyncNetwork(path7, slot_limit=UNBOUNDED_SLOTS).run(
            lambda v: Fat(), seed=0
        )
        assert result.outputs[1] == 2

    def test_unknown_neighbor_rejected(self, path7):
        class Bad(NodeProcess):
            def on_start(self, ctx):
                ctx.send(ctx.node_id, {"type": "self"})  # never a neighbor

            def on_round(self, ctx, inbox):
                ctx.terminate(0)

        with pytest.raises(UnknownNeighbor):
            SyncNetwork(path7).run(lambda v: Bad(), seed=0)


class TestContext:
    def test_neighbor_ids_match_graph(self, star9):
        captured = {}

        class Capture(NodeProcess):
            def on_start(self, ctx):
                captured[ctx.node_id] = ctx.neighbor_ids
                ctx.terminate(0)

            def on_round(self, ctx, inbox):
                pass

        SyncNetwork(star9).run(lambda v: Capture(), seed=0)
        assert sorted(captured[0]) == list(range(1, 9))
        assert captured[3] == (0,)

    def test_n_visible_to_nodes(self, path7):
        seen = []

        class SeeN(NodeProcess):
            def on_start(self, ctx):
                seen.append(ctx.n)
                ctx.terminate(0)

            def on_round(self, ctx, inbox):
                pass

        SyncNetwork(path7).run(lambda v: SeeN(), seed=0)
        assert seen == [7] * 7

    def test_terminate_twice_raises(self, path7):
        from repro.runtime import AlreadyTerminated

        class Twice(NodeProcess):
            def on_start(self, ctx):
                ctx.terminate(0)
                ctx.terminate(1)

            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(AlreadyTerminated):
            SyncNetwork(path7).run(lambda v: Twice(), seed=0)

    def test_send_after_terminate_raises(self, path7):
        from repro.runtime import AlreadyTerminated

        class Zombie(NodeProcess):
            def on_start(self, ctx):
                ctx.terminate(0)
                ctx.broadcast({"type": "boo"})

            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(AlreadyTerminated):
            SyncNetwork(path7).run(lambda v: Zombie(), seed=0)

    def test_message_sent_before_terminate_is_delivered(self, path7):
        class Farewell(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast({"type": "bye", "value": ctx.node_id})
                ctx.terminate(-1)

            def on_round(self, ctx, inbox):  # pragma: no cover
                pass

        class Listener(NodeProcess):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                ctx.terminate(len(inbox))

        def factory(v):
            return Farewell() if v == 0 else Listener()

        result = SyncNetwork(path7).run(factory, seed=0)
        assert result.outputs[1] == 1  # heard node 0's farewell
