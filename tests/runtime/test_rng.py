"""Unit tests for deterministic randomness management."""

import numpy as np
import pytest

from repro.runtime import (
    as_seed_sequence,
    generator_from,
    random_unique_ids,
    spawn_node_rngs,
    spawn_trial_seeds,
)


class TestAsSeedSequence:
    def test_int(self):
        ss = as_seed_sequence(42)
        assert isinstance(ss, np.random.SeedSequence)
        assert ss.entropy == 42

    def test_none_gives_fresh_entropy(self):
        a = as_seed_sequence(None)
        b = as_seed_sequence(None)
        assert a.entropy != b.entropy

    def test_passthrough(self):
        ss = np.random.SeedSequence(7)
        assert as_seed_sequence(ss) is ss

    def test_generator_derives_child(self):
        gen = np.random.default_rng(0)
        ss = as_seed_sequence(gen)
        assert isinstance(ss, np.random.SeedSequence)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_seed_sequence("not-a-seed")


class TestSpawning:
    def test_node_rngs_are_independent(self):
        rngs = spawn_node_rngs(0, 8)
        draws = [r.integers(0, 2**32) for r in rngs]
        assert len(set(draws)) == 8  # collisions astronomically unlikely

    def test_node_rngs_deterministic(self):
        a = [r.integers(0, 2**32) for r in spawn_node_rngs(5, 4)]
        b = [r.integers(0, 2**32) for r in spawn_node_rngs(5, 4)]
        assert a == b

    def test_trial_seeds_count(self):
        assert len(spawn_trial_seeds(0, 17)) == 17

    def test_trial_seeds_distinct_streams(self):
        seeds = spawn_trial_seeds(0, 6)
        draws = [np.random.default_rng(s).integers(0, 2**32) for s in seeds]
        assert len(set(draws)) == 6

    def test_generator_from_passthrough(self):
        gen = np.random.default_rng(1)
        assert generator_from(gen) is gen


class TestRandomUniqueIds:
    def test_unique(self):
        rng = np.random.default_rng(3)
        ids = random_unique_ids(rng, 50)
        assert len(set(ids.tolist())) == 50

    def test_range_polynomial(self):
        rng = np.random.default_rng(3)
        ids = random_unique_ids(rng, 10, id_space_exponent=3)
        assert ids.max() < 10**3

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert random_unique_ids(rng, 0).size == 0

    def test_large_space_path(self):
        rng = np.random.default_rng(0)
        ids = random_unique_ids(rng, 20, id_space_exponent=9)
        assert len(set(ids.tolist())) == 20
