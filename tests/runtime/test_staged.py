"""Unit tests for the fixed-length stage scheduler."""

import pytest

from repro.graphs import path_graph
from repro.runtime import NodeContext, StagedProcess, SyncNetwork


class Recorder(StagedProcess):
    """Records (stage, stage_round, global_round) triples."""

    def __init__(self, lengths):
        super().__init__()
        self._lengths_spec = lengths
        self.trace = []

    def stage_lengths(self, ctx):
        return self._lengths_spec

    def on_stage_start(self, ctx, stage):
        self.trace.append(("start", stage, ctx.round))

    def on_stage_round(self, ctx, stage, stage_round, inbox):
        self.trace.append(("round", stage, stage_round, ctx.round))
        if stage == len(self._lengths_spec) - 1 and stage_round >= 1:
            ctx.terminate(0)


def run_recorder(lengths, n=3):
    procs = {}

    def factory(v):
        procs[v] = Recorder(lengths)
        return procs[v]

    SyncNetwork(path_graph(n)).run(factory, seed=0)
    return procs


class TestStageScheduling:
    def test_stage_boundaries(self):
        procs = run_recorder([2, 3, None])
        trace = procs[0].trace
        rounds = [t for t in trace if t[0] == "round"]
        # stage 0: rounds 0,1 ; stage 1: rounds 0,1,2 ; stage 2: 0,1
        assert [(t[1], t[2]) for t in rounds] == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 1),
        ]

    def test_stage_start_called_once_per_stage(self):
        procs = run_recorder([2, 2, None])
        starts = [t for t in procs[1].trace if t[0] == "start"]
        assert [s[1] for s in starts] == [0, 1, 2]

    def test_all_nodes_aligned(self):
        procs = run_recorder([2, 3, None], n=4)
        traces = [procs[v].trace for v in range(4)]
        assert all(t == traces[0] for t in traces)

    def test_global_rounds_contiguous(self):
        procs = run_recorder([1, 1, None])
        rounds = [t[3] for t in procs[0].trace if t[0] == "round"]
        assert rounds == list(range(len(rounds)))


class TestStageValidation:
    def _run_with(self, lengths):
        return run_recorder(lengths, n=2)

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError):
            self._run_with([])

    def test_mid_open_stage_rejected(self):
        with pytest.raises(ValueError):
            self._run_with([2, None, 2])

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            self._run_with([0, None])

    def test_running_past_final_stage_raises(self):
        class Overrun(StagedProcess):
            def stage_lengths(self, ctx):
                return [1, 1]

            def on_stage_round(self, ctx, stage, stage_round, inbox):
                pass  # never terminates

        with pytest.raises(RuntimeError):
            SyncNetwork(path_graph(2)).run(lambda v: Overrun(), seed=0)
