"""Tests for execution tracing."""

import pytest

from repro.algorithms.luby import LubyProcess
from repro.graphs.generators import path_graph, star_graph
from repro.runtime import MessageTrace, SyncNetwork


def run_traced(graph, seed=0, **kwargs):
    trace = MessageTrace(**kwargs)
    SyncNetwork(graph).run(lambda v: LubyProcess(), seed=seed, trace=trace)
    return trace


class TestRecording:
    def test_messages_recorded(self):
        trace = run_traced(path_graph(5))
        assert len(trace.messages()) > 0
        # round-0 priorities: every node broadcasts once over each edge
        prio0 = [
            e
            for e in trace.by_round(0)
            if e.kind == "message" and e.payload["type"] == "prio"
        ]
        assert len(prio0) == 2 * 4  # 2m directed messages

    def test_terminations_recorded_once_per_node(self):
        trace = run_traced(path_graph(6))
        terms = [e for e in trace.events if e.kind == "terminate"]
        assert len(terms) == 6
        assert {e.sender for e in terms} == set(range(6))

    def test_outputs_binary(self):
        trace = run_traced(star_graph(7))
        outs = {e.payload for e in trace.events if e.kind == "terminate"}
        assert outs <= {0, 1}

    def test_payload_types_histogram(self):
        trace = run_traced(path_graph(5))
        hist = trace.payload_types()
        assert "prio" in hist and hist["prio"] >= 8


class TestQuerying:
    def test_involving(self):
        trace = run_traced(path_graph(4))
        for e in trace.involving(0):
            assert e.sender == 0 or e.receiver == 0

    def test_by_round_disjoint_union(self):
        trace = run_traced(path_graph(4))
        total = sum(
            len(trace.by_round(r))
            for r in range(max(e.round_index for e in trace.events) + 1)
        )
        assert total == len(trace.events)

    def test_transcript_renders(self):
        trace = run_traced(path_graph(4))
        text = trace.transcript(rounds=[0])
        assert "prio" in text and "r   0" in text

    def test_describe_termination(self):
        trace = run_traced(path_graph(3))
        term = next(e for e in trace.events if e.kind == "terminate")
        assert "output" in term.describe()


class TestDescribe:
    def test_dict_payload_shows_type_tag(self):
        from repro.runtime.trace import TraceEvent

        e = TraceEvent(3, "message", 1, 2, {"type": "prio", "value": 0.5})
        text = e.describe()
        assert "[prio]" in text
        assert "1 → 2" in text
        assert "r   3" in text

    def test_non_dict_payload_shows_type_name(self):
        from repro.runtime.trace import TraceEvent

        e = TraceEvent(0, "message", 4, 0, 42)
        text = e.describe()
        assert "[int]" in text
        assert "42" in text

    def test_terminate_event_shows_output(self):
        from repro.runtime.trace import TraceEvent

        e = TraceEvent(7, "terminate", 5, None, 1)
        text = e.describe()
        assert "node 5" in text
        assert "output 1" in text

    def test_transcript_filters_rounds(self):
        trace = run_traced(path_graph(4))
        only_r0 = trace.transcript(rounds=[0])
        assert all(line.startswith("r   0") for line in only_r0.splitlines())
        # an empty slice renders to an empty string (no truncation note)
        assert trace.transcript(rounds=[10_000]) == ""

    def test_payload_types_non_dict(self):
        trace = MessageTrace()
        trace.record_message(0, 0, 1, "raw-string")
        trace.record_message(0, 1, 0, {"type": "prio"})
        hist = trace.payload_types()
        assert hist == {"str": 1, "prio": 1}


class TestTruncation:
    def test_truncates_at_cap(self):
        trace = run_traced(star_graph(10), max_events=5)
        assert trace.truncated
        assert len(trace.events) == 5
        assert "truncated" in trace.transcript()
