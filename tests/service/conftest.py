"""Shared fixtures for the estimation-service tests.

``slow_algorithm`` registers a deliberately slow (simulator-style, no
vectorized runner) MIS algorithm so coalescing/timeout tests get real
wall-clock overlap without large graphs.  It runs inline (workers=1), so
the class never crosses a process boundary.
"""

import time

import numpy as np
import pytest

from repro.core.registry import _REGISTRY, register
from repro.core.result import MISResult

SLOW_NAME = "svc_test_slow"


class SlowGreedy:
    """Greedy-by-index MIS with an artificial per-run delay."""

    def __init__(self, delay_s: float = 0.002):
        self.delay_s = delay_s

    @property
    def name(self) -> str:
        return SLOW_NAME

    def run(self, graph, rng) -> MISResult:
        time.sleep(self.delay_s)
        member = np.zeros(graph.n, dtype=bool)
        blocked = np.zeros(graph.n, dtype=bool)
        order = rng.permutation(graph.n)
        adj = [graph.neighbors(v) for v in range(graph.n)]
        for v in order:
            if not blocked[v]:
                member[v] = True
                blocked[adj[v]] = True
                blocked[v] = True
        return MISResult(membership=member, rounds=1)


@pytest.fixture(scope="session")
def slow_algorithm():
    if SLOW_NAME not in _REGISTRY:
        register(SLOW_NAME)(SlowGreedy)
    return SLOW_NAME
