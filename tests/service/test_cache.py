"""Result-cache unit tests plus end-to-end hit/miss accounting."""

import numpy as np

from repro.analysis.fairness import JoinEstimate
from repro.runtime.metrics import ServiceCounters
from repro.service import Estimator, ResultCache, cache_key


def est(trials=4):
    return JoinEstimate(counts=np.array([0, trials // 2, trials]), trials=trials)


class TestCacheKey:
    def test_distinct_inputs_distinct_keys(self):
        base = cache_key("h", "luby_fast", 0, 100, "exact")
        assert base != cache_key("g", "luby_fast", 0, 100, "exact")
        assert base != cache_key("h", "fair_tree_fast", 0, 100, "exact")
        assert base != cache_key("h", "luby_fast", 1, 100, "exact")
        assert base != cache_key("h", "luby_fast", 0, 101, "exact")
        assert base != cache_key("h", "luby_fast", 0, 100, "vectorized")

    def test_seedless_is_uncacheable(self):
        assert cache_key("h", "luby_fast", None, 100, "exact") is None


class TestResultCache:
    def test_get_put(self):
        c = ResultCache(capacity=4, counters=ServiceCounters())
        assert c.get("k") is None
        c.put("k", est())
        assert c.get("k").trials == 4

    def test_lru_eviction(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=2, counters=counters)
        c.put("a", est(1))
        c.put("b", est(2))
        c.get("a")  # refresh a → b is now least-recent
        c.put("c", est(3))
        assert c.get("b") is None
        assert c.get("a") is not None and c.get("c") is not None
        assert counters.snapshot()["cache_evictions"] == 1

    def test_counters_track_hits_and_misses(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=4, counters=counters)
        c.get("k")
        c.put("k", est())
        c.get("k")
        snap = counters.snapshot()
        assert snap["cache_misses"] == 1
        assert snap["cache_hits"] == 1

    def test_capacity_zero_disables(self):
        c = ResultCache(capacity=0, counters=ServiceCounters())
        c.put("k", est())
        assert c.get("k") is None


class TestEvidencePlane:
    def _gauge(self, counters):
        return counters.registry.gauge("service_evidence_trials_resident").value

    def test_lru_eviction_keeps_resident_gauge_consistent(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=2, counters=counters)
        c.add_evidence("g1", "luby", est(4))
        c.add_evidence("g2", "luby", est(8))
        assert self._gauge(counters) == 12
        c.evidence("g1", "luby")  # refresh g1 → g2 is least-recent
        c.add_evidence("g3", "luby", est(16))
        assert c.evidence_trials("g2", "luby") == 0
        assert c.evidence_trials("g1", "luby") == 4
        # The gauge tracks exactly the trials still resident.
        assert self._gauge(counters) == 4 + 16
        assert counters.snapshot()["cache_evictions"] == 1

    def test_purge_selective_and_full(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=8, counters=counters)
        c.add_evidence("g1", "luby", est(4))
        c.add_evidence("g1", "fair", est(4))
        c.add_evidence("g2", "luby", est(4))
        assert c.purge_evidence(graph_hash="g1", algorithm_key="luby") == 1
        assert self._gauge(counters) == 8
        assert c.purge_evidence(graph_hash="g2") == 1
        assert c.purge_evidence() == 1  # everything left
        assert self._gauge(counters) == 0
        assert c.purge_evidence() == 0  # idempotent on empty plane

    def test_purged_tags_do_not_block_redeposit(self):
        c = ResultCache(capacity=8, counters=ServiceCounters())
        c.add_evidence("g", "luby", est(4), tag=("seed", 7))
        c.purge_evidence(graph_hash="g")
        # The purge dropped the dedup tag with the entry, so the same
        # deterministic contribution may legitimately come back.
        c.add_evidence("g", "luby", est(4), tag=("seed", 7))
        assert c.evidence_trials("g", "luby") == 4

    def test_same_tag_does_not_double_count(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=8, counters=counters)
        c.add_evidence("g", "luby", est(4), tag=("seed", 7))
        c.add_evidence("g", "luby", est(4), tag=("seed", 7))
        assert c.evidence_trials("g", "luby") == 4
        assert self._gauge(counters) == 4

    def test_evidence_entries_describes_pools(self):
        c = ResultCache(capacity=8, counters=ServiceCounters())
        c.add_evidence("g", "luby", est(16), tag="t1")
        rows = c.evidence_entries()
        assert len(rows) == 1
        row = rows[0]
        assert row["graph_hash"] == "g" and row["algorithm"] == "luby"
        assert row["trials"] == 16 and row["nodes"] == 3
        assert row["tags"] == 1
        assert row["bytes"] > 0 and row["age_s"] >= 0
        # Wilson half-width at 95% for p=0.5, n=16 is ≈ 0.22.
        assert 0.2 < row["achievable_halfwidth"] < 0.3


class TestEstimatorCaching:
    def test_repeat_request_served_from_cache(self):
        with Estimator(n_jobs=1) as svc:
            first = svc.estimate(
                graph_spec="tree:40:3", algorithm="luby_fast", trials=64, seed=3
            )
            again = svc.estimate(
                graph_spec="tree:40:3", algorithm="luby_fast", trials=64, seed=3
            )
            snap = svc.counters.snapshot()
        assert not first.cached
        assert again.cached
        assert again.trials_run == 0
        assert np.array_equal(again.estimate.counts, first.estimate.counts)
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] >= 1
        # No new trials were executed for the repeat.
        assert snap["trials_executed"] == 64

    def test_different_seed_misses(self):
        with Estimator(n_jobs=1) as svc:
            svc.estimate(graph_spec="path:12", algorithm="luby_fast", trials=32, seed=0)
            other = svc.estimate(
                graph_spec="path:12", algorithm="luby_fast", trials=32, seed=1
            )
        assert not other.cached

    def test_seedless_request_bypasses_cache(self):
        with Estimator(n_jobs=1, cache_size=8) as svc:
            a = svc.estimate(
                graph_spec="path:12", algorithm="luby_fast", trials=32, seed=None
            )
            b = svc.estimate(
                graph_spec="path:12", algorithm="luby_fast", trials=32, seed=None
            )
            snap = svc.counters.snapshot()
        assert not a.cached and not b.cached
        assert snap["cache_hits"] == 0
        assert snap["trials_executed"] == 64
