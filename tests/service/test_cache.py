"""Result-cache unit tests plus end-to-end hit/miss accounting."""

import numpy as np

from repro.analysis.fairness import JoinEstimate
from repro.runtime.metrics import ServiceCounters
from repro.service import Estimator, ResultCache, cache_key


def est(trials=4):
    return JoinEstimate(counts=np.array([0, trials // 2, trials]), trials=trials)


class TestCacheKey:
    def test_distinct_inputs_distinct_keys(self):
        base = cache_key("h", "luby_fast", 0, 100, "exact")
        assert base != cache_key("g", "luby_fast", 0, 100, "exact")
        assert base != cache_key("h", "fair_tree_fast", 0, 100, "exact")
        assert base != cache_key("h", "luby_fast", 1, 100, "exact")
        assert base != cache_key("h", "luby_fast", 0, 101, "exact")
        assert base != cache_key("h", "luby_fast", 0, 100, "vectorized")

    def test_seedless_is_uncacheable(self):
        assert cache_key("h", "luby_fast", None, 100, "exact") is None


class TestResultCache:
    def test_get_put(self):
        c = ResultCache(capacity=4, counters=ServiceCounters())
        assert c.get("k") is None
        c.put("k", est())
        assert c.get("k").trials == 4

    def test_lru_eviction(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=2, counters=counters)
        c.put("a", est(1))
        c.put("b", est(2))
        c.get("a")  # refresh a → b is now least-recent
        c.put("c", est(3))
        assert c.get("b") is None
        assert c.get("a") is not None and c.get("c") is not None
        assert counters.snapshot()["cache_evictions"] == 1

    def test_counters_track_hits_and_misses(self):
        counters = ServiceCounters()
        c = ResultCache(capacity=4, counters=counters)
        c.get("k")
        c.put("k", est())
        c.get("k")
        snap = counters.snapshot()
        assert snap["cache_misses"] == 1
        assert snap["cache_hits"] == 1

    def test_capacity_zero_disables(self):
        c = ResultCache(capacity=0, counters=ServiceCounters())
        c.put("k", est())
        assert c.get("k") is None


class TestEstimatorCaching:
    def test_repeat_request_served_from_cache(self):
        with Estimator(n_jobs=1) as svc:
            first = svc.estimate(
                graph_spec="tree:40:3", algorithm="luby_fast", trials=64, seed=3
            )
            again = svc.estimate(
                graph_spec="tree:40:3", algorithm="luby_fast", trials=64, seed=3
            )
            snap = svc.counters.snapshot()
        assert not first.cached
        assert again.cached
        assert again.trials_run == 0
        assert np.array_equal(again.estimate.counts, first.estimate.counts)
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] >= 1
        # No new trials were executed for the repeat.
        assert snap["trials_executed"] == 64

    def test_different_seed_misses(self):
        with Estimator(n_jobs=1) as svc:
            svc.estimate(graph_spec="path:12", algorithm="luby_fast", trials=32, seed=0)
            other = svc.estimate(
                graph_spec="path:12", algorithm="luby_fast", trials=32, seed=1
            )
        assert not other.cached

    def test_seedless_request_bypasses_cache(self):
        with Estimator(n_jobs=1, cache_size=8) as svc:
            a = svc.estimate(
                graph_spec="path:12", algorithm="luby_fast", trials=32, seed=None
            )
            b = svc.estimate(
                graph_spec="path:12", algorithm="luby_fast", trials=32, seed=None
            )
            snap = svc.counters.snapshot()
        assert not a.cached and not b.cached
        assert snap["cache_hits"] == 0
        assert snap["trials_executed"] == 64
