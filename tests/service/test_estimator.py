"""End-to-end Estimator tests: exactness, coalescing, lifecycle, pools.

The ISSUE-level guarantees checked here:

* exact mode returns **bit-identical** counts to a serial ``run_trials``
  with the same seed (inline and with a real multiprocess pool);
* concurrent identical requests coalesce — the trials are executed once
  and every subscriber gets the same estimate;
* concurrent seedless requests for the same (graph, algorithm) pair share
  trial chunks instead of running independently;
* ``shutdown`` leaves no worker process behind (no zombies), and
  submitting afterwards raises.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.analysis import run_trials
from repro.core import make
from repro.graphs import build_graph
from repro.service import (
    EstimateCancelled,
    EstimateTimeout,
    Estimator,
)

TREE = "tree:40:3"


class TestExactness:
    def test_exact_mode_matches_serial_run_trials(self):
        graph = build_graph(TREE)
        serial = run_trials(make("fair_tree_fast"), graph, 96, seed=7)
        with Estimator(n_jobs=1, chunk_trials=16) as svc:
            res = svc.estimate(
                graph_spec=TREE,
                algorithm="fair_tree_fast",
                trials=96,
                seed=7,
                mode="exact",
            )
        assert res.mode == "exact"
        assert res.estimate.trials == 96
        assert np.array_equal(res.estimate.counts, serial.counts)

    def test_exact_mode_matches_with_process_pool(self):
        graph = build_graph(TREE)
        serial = run_trials(make("luby_fast"), graph, 64, seed=11)
        with Estimator(n_jobs=2, clamp_to_host=False, chunk_trials=16) as svc:
            res = svc.estimate(
                graph_spec=TREE,
                algorithm="luby_fast",
                trials=64,
                seed=11,
                mode="exact",
            )
        assert np.array_equal(res.estimate.counts, serial.counts)

    def test_vectorized_mode_deterministic(self):
        kwargs = dict(
            graph_spec=TREE, algorithm="luby_fast", trials=128, seed=5
        )
        with Estimator(n_jobs=1, chunk_trials=32, cache_size=0) as svc:
            a = svc.estimate(mode="vectorized", **kwargs)
        with Estimator(n_jobs=1, chunk_trials=32, cache_size=0) as svc:
            b = svc.estimate(mode="vectorized", **kwargs)
        assert a.estimate.trials == 128
        assert np.array_equal(a.estimate.counts, b.estimate.counts)

    def test_auto_resolves_to_vectorized_for_fast_engines(self):
        with Estimator(n_jobs=1) as svc:
            res = svc.estimate(
                graph_spec=TREE, algorithm="luby_fast", trials=32, seed=0
            )
        assert res.mode == "vectorized"

    def test_auto_falls_back_to_exact(self, slow_algorithm):
        with Estimator(n_jobs=1) as svc:
            res = svc.estimate(
                graph_spec="path:8", algorithm=slow_algorithm, trials=8, seed=0
            )
        assert res.mode == "exact"

    def test_auto_resolves_vectorized_for_all_paper_fast_engines(self):
        algorithms = [
            "luby_fast",
            "fair_tree_fast",
            "fair_rooted_fast",
            "fair_bipart_fast",
            "color_mis_fast",
        ]
        with Estimator(n_jobs=1) as svc:
            for algorithm in algorithms:
                res = svc.estimate(
                    graph_spec=TREE, algorithm=algorithm, trials=16, seed=0
                )
                assert res.mode == "vectorized", algorithm
            fallback = svc.registry.counter(
                "service_vectorized_fallback_total", labelnames=("algorithm",)
            )
            assert not fallback.children()

    def test_fallback_counter_increments_per_algorithm(self, slow_algorithm):
        with Estimator(n_jobs=1) as svc:
            svc.estimate(
                graph_spec="path:8", algorithm=slow_algorithm, trials=8, seed=0
            )
            svc.estimate(
                graph_spec="path:8", algorithm=slow_algorithm, trials=8, seed=1
            )
            fallback = svc.registry.counter(
                "service_vectorized_fallback_total", labelnames=("algorithm",)
            )
            assert fallback.labels(algorithm=slow_algorithm).value == 2

    def test_vectorized_mode_requires_runner(self, slow_algorithm):
        with Estimator(n_jobs=1) as svc:
            with pytest.raises(ValueError, match="no vectorized runner"):
                svc.submit(
                    graph_spec="path:8",
                    algorithm=slow_algorithm,
                    trials=8,
                    mode="vectorized",
                )


class TestCoalescing:
    def test_identical_requests_share_execution(self, slow_algorithm):
        kwargs = dict(
            graph_spec=TREE, algorithm=slow_algorithm, trials=64, seed=9
        )
        with Estimator(n_jobs=1, chunk_trials=8) as svc:
            first = svc.submit(**kwargs)
            second = svc.submit(**kwargs)
            a = first.result(timeout=30)
            b = second.result(timeout=30)
            snap = svc.counters.snapshot()
        assert np.array_equal(a.estimate.counts, b.estimate.counts)
        # Only one request's worth of trials actually ran.
        assert snap["trials_executed"] == 64
        assert snap["coalesced_requests"] == 1
        assert b.coalesced and b.trials_run == 0

    def test_seedless_requests_share_stream(self, slow_algorithm):
        kwargs = dict(
            graph_spec=TREE, algorithm=slow_algorithm, trials=48, seed=None
        )
        with Estimator(n_jobs=1, chunk_trials=8) as svc:
            first = svc.submit(**kwargs)
            second = svc.submit(**kwargs)
            a = first.result(timeout=30)
            b = second.result(timeout=30)
            snap = svc.counters.snapshot()
        assert a.estimate.trials == 48 and b.estimate.trials == 48
        # Both subscribers drained one shared chunk stream.
        assert snap["trials_executed"] == 48
        assert snap["coalesced_requests"] == 1

    def test_request_records_capture_latency(self):
        with Estimator(n_jobs=1) as svc:
            svc.estimate(
                graph_spec="path:10", algorithm="luby_fast", trials=32, seed=0
            )
            records = list(svc.records)
        assert len(records) == 1
        rec = records[0]
        assert rec.algorithm == "luby_fast"
        assert rec.trials == 32
        assert rec.latency_s >= 0
        assert rec.throughput >= 0


class TestLifecycle:
    def test_result_timeout_then_success(self, slow_algorithm):
        with Estimator(n_jobs=1, chunk_trials=8) as svc:
            handle = svc.submit(
                graph_spec="path:8", algorithm=slow_algorithm, trials=64, seed=1
            )
            with pytest.raises(EstimateTimeout):
                handle.result(timeout=0.001)
            res = handle.result(timeout=30)
        assert res.estimate.trials == 64

    def test_shutdown_leaves_no_zombie_processes(self):
        svc = Estimator(n_jobs=2, clamp_to_host=False, chunk_trials=16)
        try:
            svc.estimate(
                graph_spec=TREE,
                algorithm="fair_tree_fast",
                trials=64,
                seed=0,
                mode="exact",
            )
            procs = svc._scheduler.worker_processes()
            assert procs, "expected live pool workers before shutdown"
        finally:
            svc.shutdown(wait=True, timeout=30)
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in procs):
            if time.monotonic() > deadline:
                raise AssertionError(f"zombie workers survived shutdown: {procs}")
            time.sleep(0.01)
        mine = {p.pid for p in procs}
        assert not any(c.pid in mine for c in mp.active_children())

    def test_submit_after_shutdown_raises(self):
        svc = Estimator(n_jobs=1)
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.submit(graph_spec="path:4", algorithm="luby_fast", trials=8)

    def test_hard_shutdown_cancels_pending(self, slow_algorithm):
        svc = Estimator(n_jobs=1, chunk_trials=4)
        handle = svc.submit(
            graph_spec="path:8",
            algorithm=slow_algorithm,
            trials=400,
            seed=2,
            params={"delay_s": 0.005},
        )
        svc.shutdown(wait=False)
        with pytest.raises((EstimateCancelled, EstimateTimeout)):
            handle.result(timeout=5)

    def test_workers_clamped_to_host(self):
        svc = Estimator(n_jobs=4096)
        try:
            import os

            assert svc.workers <= (os.cpu_count() or 1)
        finally:
            svc.shutdown()
