"""Convergence traces, the request journal, and `repro explain`."""

import json

import pytest

from repro.service import (
    ConvergenceTrace,
    Estimator,
    Precision,
    RequestJournal,
    TraceFrame,
)


def frame(round=1, trials=64, hw=0.1, satisfied=False, capped=False, **kw):
    defaults = dict(
        round=round,
        chunks=1,
        new_trials=trials,
        total_new_trials=trials,
        prior_trials=0,
        trials=trials,
        node_halfwidth=hw,
        node_target=0.025,
        inequality_halfwidth=None,
        inequality_target=None,
        predicted_remaining=0,
        satisfied=satisfied,
        capped=capped,
        wall_s=0.01,
    )
    defaults.update(kw)
    return TraceFrame(**defaults)


def trace(request_id="r1", stop_reason="satisfied", frames=(), **kw):
    defaults = dict(
        request_id=request_id,
        algorithm="fair_tree_fast",
        graph_hash="h" * 8,
        mode="vectorized",
        stop_reason=stop_reason,
        prior_trials=0,
        new_trials=64,
        cached=False,
        precision={"node_ci": 0.025},
        frames=tuple(frames),
    )
    defaults.update(kw)
    return ConvergenceTrace(**defaults)


class TestTraceFrame:
    def test_outcome(self):
        assert frame().outcome == "continue"
        assert frame(satisfied=True).outcome == "satisfied"
        assert frame(capped=True).outcome == "capped"

    def test_json_round_trip(self):
        f = frame(satisfied=True, inequality_halfwidth=0.3,
                  inequality_target=0.5)
        back = TraceFrame.from_json(json.loads(json.dumps(f.to_json())))
        assert back == f

    def test_json_serializes_outcome_not_flags(self):
        doc = frame(capped=True).to_json()
        assert doc["outcome"] == "capped"
        assert "satisfied" not in doc and "capped" not in doc


class TestConvergenceTrace:
    def test_stop_reason_validated(self):
        with pytest.raises(ValueError):
            trace(stop_reason="whatever")

    def test_rounds_excludes_prior_frame(self):
        t = trace(frames=[frame(round=0), frame(round=1), frame(round=2)])
        assert t.rounds == 2

    def test_stopped_early(self):
        assert trace(stop_reason="satisfied").stopped_early
        assert not trace(stop_reason="capped").stopped_early
        assert not trace(stop_reason="fixed-budget").stopped_early

    def test_node_halfwidths_trajectory(self):
        t = trace(frames=[frame(hw=0.2), frame(round=2, hw=0.05)])
        assert t.node_halfwidths() == [0.2, 0.05]

    def test_json_round_trip(self):
        t = trace(frames=[frame(), frame(round=2, satisfied=True)])
        back = ConvergenceTrace.from_json(json.loads(json.dumps(t.to_json())))
        assert back == t


class TestRequestJournal:
    def test_capacity_bounds_ring(self):
        j = RequestJournal(capacity=2)
        for i in range(4):
            j.record(trace(request_id=f"r{i}"))
        assert len(j) == 2
        assert j.get("r0") is None and j.get("r3") is not None

    def test_last_and_get_newest_match(self):
        j = RequestJournal()
        first = trace(request_id="dup", new_trials=1)
        second = trace(request_id="dup", new_trials=2)
        j.record(first)
        j.record(second)
        assert j.last() is second
        assert j.get("dup") is second
        assert j.get("missing") is None

    def test_traces_oldest_first(self):
        j = RequestJournal()
        a, b = trace(request_id="a"), trace(request_id="b")
        j.record(a)
        j.record(b)
        assert j.traces() == [a, b]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RequestJournal(capacity=0)


class TestEndToEnd:
    def test_cold_precision_request_traces_rounds(self):
        with Estimator(n_jobs=1) as svc:
            result = svc.estimate(
                graph_spec="tree:40:1",
                algorithm="fair_tree_fast",
                precision=Precision.default(),
                seed=0,
                trace=True,
                request_id="probe",
            )
            recorded = svc.journal.get("probe")
        t = result.convergence
        assert t is recorded
        # A cold default-precision request cannot close its CI in the
        # first 64-trial round, so the audit has at least two rounds.
        assert t.rounds >= 2
        widths = t.node_halfwidths()
        assert all(b <= a for a, b in zip(widths, widths[1:]))
        assert t.stop_reason in ("satisfied", "capped")
        assert t.stopped_early == result.stopped_early
        assert t.frames[-1].outcome == t.stop_reason
        assert t.new_trials == result.trials_run
        # Pre-stop frames predict remaining work; the final one is done.
        assert t.frames[0].predicted_remaining > 0
        assert t.frames[-1].predicted_remaining == 0

    def test_warm_request_audits_prior_only_decision(self):
        with Estimator(n_jobs=1) as svc:
            svc.estimate(
                graph_spec="tree:40:1",
                algorithm="fair_tree_fast",
                precision=Precision.default(),
                seed=0,
            )
            warm = svc.estimate(
                graph_spec="tree:40:1",
                algorithm="fair_tree_fast",
                precision=Precision.default(),
                seed=1,
                trace=True,
            )
        t = warm.convergence
        assert t.cached
        assert t.stop_reason == "satisfied"
        assert t.rounds == 0 and t.frames[0].round == 0
        assert t.prior_trials > 0 and t.new_trials == 0

    def test_fixed_budget_gets_degenerate_trace(self):
        with Estimator(n_jobs=1) as svc:
            result = svc.estimate(
                graph_spec="tree:40:1",
                algorithm="luby_fast",
                trials=64,
                seed=0,
                trace=True,
            )
        t = result.convergence
        assert t.stop_reason == "fixed-budget"
        assert len(t.frames) == 1
        assert t.frames[0].node_halfwidth > 0
        assert not t.stopped_early

    def test_envelope_carries_trace_only_on_request(self):
        with Estimator(n_jobs=1) as svc:
            quiet = svc.estimate(
                graph_spec="tree:40:1",
                algorithm="fair_tree_fast",
                precision=Precision.default(),
                seed=0,
            )
            loud = svc.estimate(
                graph_spec="tree:40:1",
                algorithm="fair_tree_fast",
                precision=Precision.default(),
                seed=0,
                trace=True,
            )
        assert quiet.convergence is not None  # always recorded...
        assert "convergence" not in quiet.to_json()  # ...selectively shipped
        doc = loud.to_json()
        assert doc["v"] == 2
        restored = ConvergenceTrace.from_json(doc["convergence"])
        assert restored == loud.convergence
