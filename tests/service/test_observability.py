"""Service-level observability: connected span trees + populated metrics.

The acceptance bar for the observability layer: one service request must
produce a *connected* trace in the JSON log output — the submit-side
span, the scheduler dispatch, the pool chunk execution, and the
request-completed event all share one ``trace_id`` — and the estimator's
registry must expose the request-latency, trials-per-chunk, and
rounds-per-trial histograms.
"""

import io
import json

import pytest

from repro.graphs.spec import build_graph
from repro.obs.logging import configure_logging, disable_logging
from repro.service import Estimator


@pytest.fixture(autouse=True)
def _silence_after():
    yield
    disable_logging()


def run_probe(buf, trials=24, repeats=1):
    configure_logging(stream=buf, level="debug")
    graph = build_graph("tree:31")
    with Estimator(n_jobs=1, cache_size=8) as service:
        for _ in range(repeats):
            service.estimate(
                graph=graph,
                algorithm="luby_fast",
                trials=trials,
                seed=3,
                mode="exact",
            )
        return service


class TestSpanTree:
    def test_one_request_yields_one_connected_trace(self):
        buf = io.StringIO()
        run_probe(buf)
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        traced = [e for e in events if "trace_id" in e]
        assert traced, "no trace-correlated events emitted"
        trace_ids = {e["trace_id"] for e in traced}
        assert len(trace_ids) == 1, f"trace fragmented: {trace_ids}"

        names = {e["event"] for e in traced}
        assert "request_submitted" in names
        assert "request_completed" in names
        span_names = {
            e["span"] for e in traced if e["event"] == "span"
        }
        # submit → dispatch → chunk, all in the one trace
        assert {"estimator.submit", "scheduler.dispatch", "pool.chunk"} <= (
            span_names
        )

    def test_span_parents_link_into_a_tree(self):
        buf = io.StringIO()
        run_probe(buf)
        spans = {
            e["span"]: e
            for e in (json.loads(l) for l in buf.getvalue().splitlines())
            if e["event"] == "span"
        }
        submit = spans["estimator.submit"]
        dispatch = spans["scheduler.dispatch"]
        chunk = spans["pool.chunk"]
        assert dispatch["parent_id"] == submit["span_id"]
        assert chunk["parent_id"] == dispatch["span_id"]

    def test_separate_requests_get_separate_traces(self):
        buf = io.StringIO()
        configure_logging(stream=buf, level="debug")
        graph = build_graph("tree:31")
        with Estimator(n_jobs=1, cache_size=8) as service:
            service.estimate(
                graph=graph, algorithm="luby_fast", trials=8, seed=1,
                mode="exact",
            )
            service.estimate(
                graph=graph, algorithm="luby_fast", trials=8, seed=2,
                mode="exact",
            )
        events = [json.loads(l) for l in buf.getvalue().splitlines()]
        completions = [e for e in events if e["event"] == "request_completed"]
        assert len(completions) == 2
        assert completions[0]["trace_id"] != completions[1]["trace_id"]


class TestServiceMetrics:
    def test_required_histograms_populated(self):
        service = run_probe(io.StringIO(), repeats=2)
        snap = service.registry.snapshot()
        hists = snap["histograms"]
        latency = hists["service_request_latency_seconds"]
        assert sum(s["count"] for s in latency.values()) == 2
        assert hists["service_trials_per_chunk"][""]["count"] >= 1
        # chunk-side metrics always carry the executing worker's label
        # (pid:<self> on the inline path), so aggregate across workers
        rounds = hists["trial_rounds"]
        assert all('algorithm="luby_fast"' in key for key in rounds)
        assert all('worker="pid:' in key for key in rounds)
        assert sum(s["count"] for s in rounds.values()) == 24  # per trial
        assert hists["service_cache_age_seconds"][""]["count"] == 1  # hit

    def test_prometheus_exposition_includes_service_series(self):
        service = run_probe(io.StringIO())
        text = service.registry.render_prometheus()
        assert "service_requests_total 1" in text
        assert (
            'service_request_latency_seconds_bucket{algorithm="luby_fast"'
            in text
        )
        assert 'trial_rounds_count{algorithm="luby_fast",worker="pid:' in text

    def test_remote_plane_merges_worker_metrics_and_connects_trace(self):
        """Cross-process acceptance: a request on a real 2-worker spawn
        pool yields (a) worker-labeled metrics merged into the service
        registry and (b) one connected span tree — a single root and no
        orphan parents — exportable as Chrome trace JSON with parent and
        worker processes as separate tracks."""
        import os

        from repro.graphs.spec import build_graph as _build
        from repro.obs.export import (
            install_collector,
            to_chrome_trace,
            uninstall_collector,
        )
        from repro.obs.metrics import parse_label_key
        from repro.obs.remote import telemetry_enabled

        if not telemetry_enabled():
            pytest.skip("REPRO_TELEMETRY disabled in environment")

        graph = _build("tree:63")
        collector = install_collector(capacity=4096)
        try:
            # clamp_to_host=False: the point is exercising the
            # cross-process plane even on a small CI box
            with Estimator(
                n_jobs=2,
                cache_size=0,
                chunk_trials=16,
                clamp_to_host=False,
                context="spawn",
            ) as service:
                from repro.service import Precision

                handle = service.submit(
                    graph=graph,
                    algorithm="luby_fast",
                    precision=Precision(
                        node_ci=0.05, min_trials=48, max_trials=96
                    ),
                    seed=7,
                    mode="exact",
                )
                handle.result()
                trace_id = handle.trace_id
                snap = service.registry.snapshot()
                merged = service.registry.counter(
                    "telemetry_chunks_merged_total"
                ).value
            records = collector.records(trace_id)
        finally:
            uninstall_collector()

        assert merged >= 1
        chunk_series = snap["histograms"]["worker_chunk_seconds"]
        workers = {parse_label_key(k).get("worker") for k in chunk_series}
        assert workers
        assert f"pid:{os.getpid()}" not in workers  # real worker processes

        ids = {r["span_id"] for r in records}
        roots = [r for r in records if not r.get("parent_id")]
        orphans = [
            r
            for r in records
            if r.get("parent_id") and r["parent_id"] not in ids
        ]
        assert len(roots) == 1, f"fragmented trace: {[r['name'] for r in roots]}"
        assert roots[0]["name"] == "estimator.submit"
        assert orphans == [], f"orphan spans: {[r['name'] for r in orphans]}"

        doc = to_chrome_trace(records, trace_id=trace_id)
        assert doc["traceEvents"]
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) >= 2  # parent + at least one worker track

    def test_estimators_have_isolated_registries(self):
        graph = build_graph("tree:15")
        with Estimator(n_jobs=1, cache_size=4) as a, Estimator(
            n_jobs=1, cache_size=4
        ) as b:
            a.estimate(
                graph=graph, algorithm="luby_fast", trials=4, seed=0,
                mode="exact",
            )
            assert a.counters.requests == 1
            assert b.counters.requests == 0
            assert (
                b.registry.snapshot()["counters"]["service_requests_total"][""]
                == 0.0
            )
