"""Service-level observability: connected span trees + populated metrics.

The acceptance bar for the observability layer: one service request must
produce a *connected* trace in the JSON log output — the submit-side
span, the scheduler dispatch, the pool chunk execution, and the
request-completed event all share one ``trace_id`` — and the estimator's
registry must expose the request-latency, trials-per-chunk, and
rounds-per-trial histograms.
"""

import io
import json

import pytest

from repro.graphs.spec import build_graph
from repro.obs.logging import configure_logging, disable_logging
from repro.service import Estimator


@pytest.fixture(autouse=True)
def _silence_after():
    yield
    disable_logging()


def run_probe(buf, trials=24, repeats=1):
    configure_logging(stream=buf, level="debug")
    graph = build_graph("tree:31")
    with Estimator(n_jobs=1, cache_size=8) as service:
        for _ in range(repeats):
            service.estimate(
                graph=graph,
                algorithm="luby_fast",
                trials=trials,
                seed=3,
                mode="exact",
            )
        return service


class TestSpanTree:
    def test_one_request_yields_one_connected_trace(self):
        buf = io.StringIO()
        run_probe(buf)
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        traced = [e for e in events if "trace_id" in e]
        assert traced, "no trace-correlated events emitted"
        trace_ids = {e["trace_id"] for e in traced}
        assert len(trace_ids) == 1, f"trace fragmented: {trace_ids}"

        names = {e["event"] for e in traced}
        assert "request_submitted" in names
        assert "request_completed" in names
        span_names = {
            e["span"] for e in traced if e["event"] == "span"
        }
        # submit → dispatch → chunk, all in the one trace
        assert {"estimator.submit", "scheduler.dispatch", "pool.chunk"} <= (
            span_names
        )

    def test_span_parents_link_into_a_tree(self):
        buf = io.StringIO()
        run_probe(buf)
        spans = {
            e["span"]: e
            for e in (json.loads(l) for l in buf.getvalue().splitlines())
            if e["event"] == "span"
        }
        submit = spans["estimator.submit"]
        dispatch = spans["scheduler.dispatch"]
        chunk = spans["pool.chunk"]
        assert dispatch["parent_id"] == submit["span_id"]
        assert chunk["parent_id"] == dispatch["span_id"]

    def test_separate_requests_get_separate_traces(self):
        buf = io.StringIO()
        configure_logging(stream=buf, level="debug")
        graph = build_graph("tree:31")
        with Estimator(n_jobs=1, cache_size=8) as service:
            service.estimate(
                graph=graph, algorithm="luby_fast", trials=8, seed=1,
                mode="exact",
            )
            service.estimate(
                graph=graph, algorithm="luby_fast", trials=8, seed=2,
                mode="exact",
            )
        events = [json.loads(l) for l in buf.getvalue().splitlines()]
        completions = [e for e in events if e["event"] == "request_completed"]
        assert len(completions) == 2
        assert completions[0]["trace_id"] != completions[1]["trace_id"]


class TestServiceMetrics:
    def test_required_histograms_populated(self):
        service = run_probe(io.StringIO(), repeats=2)
        snap = service.registry.snapshot()
        hists = snap["histograms"]
        latency = hists["service_request_latency_seconds"]
        assert sum(s["count"] for s in latency.values()) == 2
        assert hists["service_trials_per_chunk"][""]["count"] >= 1
        rounds = hists["trial_rounds"]['algorithm="luby_fast"']
        assert rounds["count"] == 24  # one observation per trial
        assert hists["service_cache_age_seconds"][""]["count"] == 1  # hit

    def test_prometheus_exposition_includes_service_series(self):
        service = run_probe(io.StringIO())
        text = service.registry.render_prometheus()
        assert "service_requests_total 1" in text
        assert (
            'service_request_latency_seconds_bucket{algorithm="luby_fast"'
            in text
        )
        assert 'trial_rounds_count{algorithm="luby_fast"} 24' in text

    def test_estimators_have_isolated_registries(self):
        graph = build_graph("tree:15")
        with Estimator(n_jobs=1, cache_size=4) as a, Estimator(
            n_jobs=1, cache_size=4
        ) as b:
            a.estimate(
                graph=graph, algorithm="luby_fast", trials=4, seed=0,
                mode="exact",
            )
            assert a.counters.requests == 1
            assert b.counters.requests == 0
            assert (
                b.registry.snapshot()["counters"]["service_requests_total"][""]
                == 0.0
            )
