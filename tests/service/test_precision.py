"""The v2 precision surface: targets, stopping, evidence reuse, caps.

Statistical assertions run on ``path:2`` with ``luby_fast``: a 2-path's
MIS is exactly one endpoint, so every node's true join frequency is 0.5
— the worst case for a Wilson interval and an exact ground truth to
check coverage against.
"""

import json
import warnings

import numpy as np
import pytest

from repro.cli import _service_loop
from repro.service import (
    EstimateRequest,
    Estimator,
    Precision,
    StoppingRule,
)
from repro.service.precision import DEFAULT_NODE_CI


class TestPrecisionValidation:
    def test_requires_at_least_one_target(self):
        with pytest.raises(ValueError):
            Precision()

    def test_default_targets_node_ci(self):
        p = Precision.default()
        assert p.node_ci == DEFAULT_NODE_CI
        assert p.inequality_ci is None

    @pytest.mark.parametrize("bad", [0.0, -0.01])
    def test_rejects_nonpositive_targets(self, bad):
        with pytest.raises(ValueError):
            Precision(node_ci=bad)
        with pytest.raises(ValueError):
            Precision(inequality_ci=bad)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_confidence(self, bad):
        with pytest.raises(ValueError):
            Precision(node_ci=0.05, confidence=bad)

    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError):
            Precision(node_ci=0.05, min_trials=100, max_trials=50)

    def test_with_cap_clamps_min_trials(self):
        p = Precision(node_ci=0.05, min_trials=64).with_cap(16)
        assert p.max_trials == 16
        assert p.min_trials == 16


class TestPrecisionJson:
    def test_round_trip(self):
        p = Precision(node_ci=0.02, inequality_ci=0.5, confidence=0.9,
                      max_trials=5000, min_trials=10)
        assert Precision.from_json(p.to_json()) == p

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.from_json({"node_ci": 0.05, "trials": 100})

    def test_empty_block_gets_default_target(self):
        assert Precision.from_json({}).node_ci == DEFAULT_NODE_CI


class TestStoppingRule:
    def _evidence(self, p: float, trials: int) -> np.ndarray:
        return np.array([p * trials, (1 - p) * trials])

    def test_no_evidence_never_satisfied(self):
        rule = Precision(node_ci=0.5).rule()
        decision = rule.check(None, 0)
        assert not decision.should_stop
        assert decision.node_halfwidth == float("inf")

    def test_min_trials_blocks_early_closure(self):
        # 8/8 successes give a tight Wilson interval, but min_trials=32
        # must still hold the request open.
        rule = Precision(node_ci=0.5, min_trials=32).rule()
        decision = rule.check(self._evidence(1.0, 8), 8)
        assert not decision.satisfied

    def test_cap_detection(self):
        rule = Precision(node_ci=0.0001, max_trials=100).rule()
        decision = rule.check(self._evidence(0.5, 100), 100)
        assert decision.capped and not decision.satisfied
        assert decision.should_stop

    def test_closure_is_monotone_in_trials(self):
        # Once the CI closes at some n, more evidence at the same
        # frequency can only keep it closed.
        rule = Precision(node_ci=0.05).rule()
        satisfied = [
            rule.check(self._evidence(0.5, n), n).satisfied
            for n in (50, 200, 500, 2000, 8000)
        ]
        assert satisfied == sorted(satisfied)
        assert satisfied[-1]

    def test_both_targets_must_hold(self):
        # Node CI closes long before a 0.01-wide inequality interval.
        loose = Precision(node_ci=0.1).rule()
        strict = Precision(node_ci=0.1, inequality_ci=0.01).rule()
        counts, trials = self._evidence(0.5, 400), 400
        assert loose.check(counts, trials).satisfied
        assert not strict.check(counts, trials).satisfied

    def test_achieved_reports_halfwidths(self):
        rule = Precision(node_ci=0.05, inequality_ci=1.0).rule()
        achieved = rule.check(self._evidence(0.5, 400), 400).achieved()
        assert 0 < achieved["node_ci"] < 0.05
        assert achieved["inequality_ci"] > 0


class TestDeprecation:
    def test_trials_only_warns(self):
        with Estimator(n_jobs=1) as svc:
            with pytest.warns(DeprecationWarning, match="fixed trial budgets"):
                svc.estimate(graph_spec="path:4", algorithm="luby_fast",
                             trials=16, seed=0)

    def test_precision_does_not_warn(self):
        with Estimator(n_jobs=1) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                svc.estimate(graph_spec="path:4", algorithm="luby_fast",
                             precision=Precision(node_ci=0.2), seed=0)

    def test_trials_as_cap_alongside_precision_does_not_warn(self):
        with Estimator(n_jobs=1) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                result = svc.estimate(
                    graph_spec="path:4", algorithm="luby_fast",
                    trials=48, precision=Precision(node_ci=0.0001), seed=0,
                )
        assert result.realized_trials <= 48

    def test_neither_defaults_to_precision(self):
        with Estimator(n_jobs=1) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                result = svc.estimate(graph_spec="path:4",
                                      algorithm="luby_fast", seed=0)
        assert result.request.precision == Precision.default()

    def test_prebuilt_request_does_not_warn(self):
        request = EstimateRequest(graph_spec="path:4", algorithm="luby_fast",
                                  trials=16, seed=0)
        with Estimator(n_jobs=1) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                svc.estimate(request)


class TestSequentialStopping:
    def test_stops_early_with_correct_coverage(self):
        # path:2 → true join frequency is exactly 0.5 per node.  Across
        # 20 independent seeded requests the stopped estimate must land
        # within the target half-width at roughly nominal coverage (the
        # binomial chance of >4 misses at 95% per-seed coverage is
        # negligible), and every run must stop far below the cap.
        target = Precision(node_ci=0.1, max_trials=4000)
        covered = 0
        with Estimator(n_jobs=1) as svc:
            for seed in range(20):
                svc.cache.clear()  # keep the 20 requests independent
                result = svc.estimate(
                    graph_spec="path:2", algorithm="luby_fast",
                    precision=target, seed=seed,
                )
                assert result.stopped_early
                assert result.realized_trials < target.max_trials
                assert result.precision_achieved["node_ci"] <= 0.1
                p_hat = result.estimate.probabilities
                if np.all(np.abs(p_hat - 0.5) <= 0.1):
                    covered += 1
        assert covered >= 15

    def test_realized_trials_tracks_wilson_budget(self):
        # At p=0.5 a ±0.1 Wilson interval needs ~96 trials; sequential
        # stopping should land in that ballpark, not at the cap.
        with Estimator(n_jobs=1) as svc:
            result = svc.estimate(
                graph_spec="path:2", algorithm="luby_fast",
                precision=Precision(node_ci=0.1, max_trials=4000), seed=7,
            )
        assert 64 <= result.realized_trials <= 512


class TestEvidenceReuse:
    def test_fixed_run_seeds_precision_request(self):
        with Estimator(n_jobs=1) as svc:
            with pytest.warns(DeprecationWarning):
                svc.estimate(graph_spec="path:4", algorithm="luby_fast",
                             trials=500, seed=0)
            warm = svc.estimate(
                graph_spec="path:4", algorithm="luby_fast",
                precision=Precision(node_ci=0.05), seed=1,
            )
            counters = svc.counters.snapshot()
        # 500 pooled trials give a ±0.044 interval at p=0.5 — the 0.05
        # target is already met, so the warm request runs nothing new.
        assert warm.cached
        assert warm.trials_run == 0
        assert warm.prior_trials == 500
        assert warm.realized_trials == 500
        assert warm.stopped_early
        assert counters["evidence_hits"] >= 1
        assert counters["evidence_deposits"] >= 1
        assert counters["early_stops"] >= 1
        assert counters["evidence_trials_reused"] >= 500

    def test_precision_runs_deposit_evidence_too(self):
        with Estimator(n_jobs=1) as svc:
            first = svc.estimate(
                graph_spec="path:4", algorithm="luby_fast",
                precision=Precision(node_ci=0.1), seed=0,
            )
            second = svc.estimate(
                graph_spec="path:4", algorithm="luby_fast",
                precision=Precision(node_ci=0.1), seed=1,
            )
        assert first.prior_trials == 0
        assert second.prior_trials == first.realized_trials
        assert second.trials_run == 0

    def test_seeded_repeat_does_not_double_count(self):
        # Re-running the identical seeded fixed request must not inflate
        # the evidence pool with correlated samples.
        with Estimator(n_jobs=1) as svc:
            for _ in range(2):
                with pytest.warns(DeprecationWarning):
                    svc.estimate(graph_spec="path:4", algorithm="luby_fast",
                                 trials=64, seed=0)
            graph_hash = svc.records[-1].graph_hash
            key = EstimateRequest(
                graph_spec="path:4", algorithm="luby_fast", trials=64, seed=0
            ).algorithm_key()
            assert svc.cache.evidence_trials(graph_hash, key) == 64


class TestHardCap:
    def test_unreachable_target_stops_at_cap(self):
        with Estimator(n_jobs=1) as svc:
            result = svc.estimate(
                graph_spec="path:4", algorithm="luby_fast",
                precision=Precision(node_ci=0.0001, max_trials=100), seed=0,
            )
        assert result.realized_trials == 100
        assert not result.stopped_early
        assert result.precision_achieved["node_ci"] > 0.0001

    def test_trials_kwarg_overrides_cap(self):
        with Estimator(n_jobs=1) as svc:
            result = svc.estimate(
                graph_spec="path:4", algorithm="luby_fast",
                trials=48, precision=Precision(node_ci=0.0001), seed=0,
            )
        assert result.realized_trials == 48
        assert not result.stopped_early


class TestWireProtocol:
    def test_v1_line_parses_with_fixed_trials(self):
        req = EstimateRequest.from_json(
            {"graph": "path:4", "algorithm": "luby_fast", "trials": 64}
        )
        assert req.trials == 64
        assert req.precision is None

    def test_v1_line_rejects_precision_block(self):
        with pytest.raises(ValueError):
            EstimateRequest.from_json(
                {"graph": "path:4", "algorithm": "luby_fast",
                 "precision": {"node_ci": 0.05}}
            )

    def test_v2_round_trip(self):
        req = EstimateRequest.from_json(
            {"v": 2, "graph": "path:4", "algorithm": "luby_fast",
             "seed": 3, "precision": {"node_ci": 0.05, "max_trials": 512}}
        )
        assert req.precision == Precision(node_ci=0.05, max_trials=512)
        encoded = req.to_json()
        assert encoded["v"] == 2
        assert EstimateRequest.from_json(encoded).precision == req.precision

    def test_v2_defaults_to_default_precision(self):
        req = EstimateRequest.from_json(
            {"v": 2, "graph": "path:4", "algorithm": "luby_fast"}
        )
        assert req.precision == Precision.default()

    def test_serve_loop_notes_v1_once_per_connection(self, capsys):
        lines = [
            json.dumps({"graph": "path:4", "algorithm": "luby_fast",
                        "trials": 16, "seed": 1}),
            json.dumps({"graph": "path:4", "algorithm": "luby_fast",
                        "trials": 16, "seed": 2}),
            json.dumps({"v": 2, "graph": "path:4", "algorithm": "luby_fast",
                        "seed": 3,
                        "precision": {"node_ci": 0.2, "max_trials": 256}}),
        ]

        class _Sink:
            def __init__(self):
                self.lines = []

            def write(self, text):
                self.lines.append(text)

            def flush(self):
                pass

        sink = _Sink()
        errors = _service_loop(
            lines, sink, jobs=1, cache_size=8, mode="auto",
            include_counts=False,
        )
        assert errors == 0
        captured = capsys.readouterr()
        assert captured.err.count("v1 fixed-trial requests") == 1
        results = [json.loads(line) for line in sink.lines]
        assert results[2]["v"] == 2
        assert "realized_trials" in results[2]

    def test_v2_result_reports_precision_fields(self):
        with Estimator(n_jobs=1) as svc:
            result = svc.estimate(
                graph_spec="path:4", algorithm="luby_fast",
                precision=Precision(node_ci=0.2), seed=0,
            )
        payload = result.to_json(include_counts=False)
        assert payload["v"] == 2
        assert payload["realized_trials"] == result.realized_trials
        assert payload["stopped_early"] == result.stopped_early
        assert "precision_achieved" in payload
