"""Validation and JSON round-trip tests for EstimateRequest/EstimateResult."""

import pytest

from repro.graphs import build_graph
from repro.service import EstimateRequest, MODES


def tree():
    return build_graph("tree:20:5")


class TestValidation:
    def test_requires_exactly_one_graph_source(self):
        with pytest.raises(ValueError):
            EstimateRequest(algorithm="luby_fast", trials=10)
        with pytest.raises(ValueError):
            EstimateRequest(
                algorithm="luby_fast",
                trials=10,
                graph=tree(),
                graph_spec="tree:20:5",
            )

    def test_rejects_nonpositive_trials(self):
        with pytest.raises(ValueError):
            EstimateRequest(algorithm="luby_fast", trials=0, graph=tree())

    def test_rejects_empty_algorithm(self):
        with pytest.raises(ValueError):
            EstimateRequest(algorithm="", trials=10, graph=tree())

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            EstimateRequest(
                algorithm="luby_fast", trials=10, graph=tree(), mode="warp"
            )

    def test_rejects_bad_spec_eagerly(self):
        with pytest.raises(ValueError):
            EstimateRequest(algorithm="luby_fast", trials=10, graph_spec="donut:4")

    def test_modes_tuple(self):
        assert MODES == ("auto", "exact", "vectorized")


class TestResolution:
    def test_resolve_graph_from_spec(self):
        req = EstimateRequest(
            algorithm="luby_fast", trials=10, graph_spec="path:6"
        )
        assert req.resolve_graph().n == 6

    def test_resolve_graph_passthrough(self):
        g = tree()
        req = EstimateRequest(algorithm="luby_fast", trials=10, graph=g)
        assert req.resolve_graph() is g

    def test_algorithm_key_without_params(self):
        req = EstimateRequest(algorithm="luby_fast", trials=10, graph=tree())
        assert req.algorithm_key() == "luby_fast"

    def test_algorithm_key_sorts_params(self):
        a = EstimateRequest(
            algorithm="fair_tree_fast",
            trials=10,
            graph=tree(),
            params={"gamma_c": 1.0, "validate": True},
        )
        b = EstimateRequest(
            algorithm="fair_tree_fast",
            trials=10,
            graph=tree(),
            params={"validate": True, "gamma_c": 1.0},
        )
        assert a.algorithm_key() == b.algorithm_key()
        assert a.algorithm_key().startswith("fair_tree_fast(")


class TestJson:
    def test_round_trip(self):
        obj = {
            "id": "r1",
            "graph": "tree:20:5",
            "algorithm": "luby_fast",
            "trials": 32,
            "seed": 7,
            "mode": "exact",
        }
        req = EstimateRequest.from_json(obj)
        assert req.to_json() == {
            "graph": "tree:20:5",
            "algorithm": "luby_fast",
            "trials": 32,
            "seed": 7,
            "mode": "exact",
            "id": "r1",
        }

    def test_from_json_defaults(self):
        req = EstimateRequest.from_json({"graph": "path:4"})
        assert req.algorithm == "fair_tree_fast"
        assert req.trials == 2000
        assert req.seed == 0
        assert req.mode == "auto"

    def test_from_json_null_seed(self):
        req = EstimateRequest.from_json({"graph": "path:4", "seed": None})
        assert req.seed is None

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            EstimateRequest.from_json({"graph": "path:4", "bogus": 1})

    def test_from_json_requires_graph(self):
        with pytest.raises(ValueError, match="graph"):
            EstimateRequest.from_json({"algorithm": "luby_fast"})

    def test_to_json_rejects_in_memory_graph(self):
        req = EstimateRequest(algorithm="luby_fast", trials=10, graph=tree())
        with pytest.raises(ValueError):
            req.to_json()
